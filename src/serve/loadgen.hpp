#pragma once
/// \file loadgen.hpp
/// Load generator for the spmap serving daemon.
///
/// Simulates N concurrent client sessions against a running daemon, in
/// two driving modes:
///
///  * **closed loop** (default) — every session submits its next request
///    the moment the previous one finished (`done` event). Measures
///    capacity: the daemon is always saturated with exactly N in-flight
///    requests.
///  * **open loop** — every session submits on a fixed cadence
///    (`rate_hz` per session) regardless of completions, for
///    `duration_s`. Measures behaviour under an offered load the daemon
///    does not control — including structured `overloaded` rejections,
///    which are counted, not errors.
///
/// Requests are deterministic: request `i` of the run derives its
/// generation seed, construction seed and run seed from `seed` and `i`
/// (splitmix64 streams), pins both seeds on the wire, and bounds the run
/// by evaluations only (no deadline) — so `verify` can re-run any
/// completed request locally through the identical MappingService path
/// and demand a bit-identical makespan. The request mix assigns priority
/// classes by deterministic weighted draw (`mix`, e.g.
/// "high=1,normal=2,low=1").
///
/// Latency is measured per class from submit-write to `done`-event
/// arrival (full wire round trip including queueing), reported as
/// p50/p95/p99/mean.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/socket.hpp"

namespace spmap {

struct LoadgenOptions {
  Endpoint endpoint;
  /// Concurrent client sessions (one connection + thread each).
  std::size_t sessions = 8;
  /// Total requests across all sessions (closed loop).
  std::size_t requests = 64;
  /// Open-loop mode: submit on a cadence instead of on completion.
  bool open_loop = false;
  /// Per-session submit rate (open loop).
  double rate_hz = 20.0;
  /// Open-loop run length in seconds.
  double duration_s = 2.0;
  /// Priority-class mix, "class=weight[,class=weight...]".
  std::string mix = "normal=1";
  /// Mapper spec submitted with every request.
  std::string mapper = "spff";
  /// Generated problem size (type sp).
  std::size_t tasks = 24;
  /// Per-request evaluation budget (0 = run to convergence). Budgets
  /// keep requests deterministic; deadlines would not.
  std::size_t max_evaluations = 0;
  /// Reporting evaluator orders requested from the server.
  std::size_t reporting_orders = 0;
  /// Base seed of the deterministic request streams.
  std::uint64_t seed = 1;
  /// Distinct request identities; 0 = every request unique. With K > 0,
  /// request `i` derives its seeds from `i % K`, so a run longer than K
  /// requests repeats identities — the daemon's result cache answers the
  /// repeats (the done event carries `cache: hit`), which the cache
  /// counters below and `min_hit_rate` measure. `verify` still holds:
  /// cached answers are bit-identical to recomputation.
  std::size_t distinct = 0;
  /// Fail the run (exit-code contract in spmap_loadgen) when
  /// cache_hits / completed falls below this; negative disables.
  double min_hit_rate = -1.0;
  /// Re-run every completed request locally and compare makespans
  /// bit-identically.
  bool verify = false;
  double connect_timeout_ms = 5000.0;
  /// Extra connect attempts with exponential backoff (WireClientOptions);
  /// chaos recovery raises this floor on its own.
  std::size_t connect_retries = 0;
  /// First backoff delay between connect attempts.
  double backoff_ms = 50.0;
  /// Chaos mode (closed loop only): deterministically drop the
  /// connection around submit/await points and recover via resume — or
  /// via re-hello + status polling when the daemon restarted and no
  /// longer knows the session. Tightens the accounting invariant to
  /// "every acknowledged submit is recorded terminal exactly once":
  /// `lost` and `duplicated` in the report must stay zero.
  bool chaos = false;
  /// Probability of an injected drop at each opportunity point.
  double chaos_drop_rate = 0.15;
};

/// Per-priority-class latency/throughput aggregate.
struct LoadgenClassStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  ///< structured `overloaded` answers
  std::size_t failed = 0;    ///< failed jobs or protocol errors
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadgenReport {
  std::map<std::string, LoadgenClassStats> classes;
  std::size_t sessions = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< completed / wall
  /// Local re-execution check (`verify`): requests re-run and compared,
  /// and how many disagreed with the server bit-for-bit.
  std::size_t verified = 0;
  std::size_t mismatches = 0;
  /// Cache outcomes reported in the done/status bodies of completed
  /// requests (`cache: hit|warm|miss|none`; "none" also covers daemons
  /// predating the field).
  std::size_t cache_hits = 0;
  std::size_t cache_warm = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_none = 0;
  // Chaos-mode accounting (all zero outside chaos mode).
  std::size_t drops = 0;       ///< connection losses, injected + incidental
  std::size_t resumes = 0;     ///< reconnects that resumed the session
  std::size_t rehellos = 0;    ///< reconnects that fell back to fresh hello
  std::size_t lost = 0;        ///< acknowledged submits with no terminal
  std::size_t duplicated = 0;  ///< terminal results delivered twice
  /// First few protocol/session errors, for diagnostics.
  std::vector<std::string> errors;
};

/// Runs the load against `options.endpoint`. Throws spmap::Error when no
/// session could even connect; per-session failures are reported, not
/// thrown.
LoadgenReport run_loadgen(const LoadgenOptions& options);

/// The report as a JSON document (schema `spmap-loadgen-report/1`).
Json loadgen_report_json(const LoadgenOptions& options,
                         const LoadgenReport& report);

}  // namespace spmap
