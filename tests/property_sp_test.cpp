/// Parameterized property suite for the series-parallel machinery: for a
/// grid of (graph size, extra conflicting edges, seed) configurations,
/// verify the structural invariants that Algorithm 1 and the subgraph-set
/// construction must uphold on *every* input.

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sp/decomposition_forest.hpp"
#include "sp/recognizer.hpp"
#include "sp/subgraph_set.hpp"

namespace spmap {
namespace {

struct SpCase {
  std::size_t nodes;
  std::size_t extra_edges;
  std::uint64_t seed;
};

void PrintTo(const SpCase& c, std::ostream* os) {
  *os << "n" << c.nodes << "_e" << c.extra_edges << "_s" << c.seed;
}

class SpProperty : public ::testing::TestWithParam<SpCase> {
 protected:
  SpProperty() : rng_(GetParam().seed) {
    Dag base = generate_sp_dag(GetParam().nodes, rng_);
    graph_ = add_random_edges(base, GetParam().extra_edges, rng_);
    norm_ = normalize_source_sink(graph_);
  }

  Rng rng_;
  Dag graph_;
  Normalized norm_;
};

TEST_P(SpProperty, ForestIsStructurallyValid) {
  const auto result = grow_decomposition_forest(norm_.dag, rng_);
  EXPECT_NO_THROW(result.forest.validate(norm_.dag));
}

TEST_P(SpProperty, EveryEdgeInExactlyOneLeaf) {
  const auto result = grow_decomposition_forest(norm_.dag, rng_);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const auto root : result.forest.roots()) {
    for (const EdgeId e : result.forest.edges(root)) {
      seen.insert(e.v);
      ++total;
    }
  }
  EXPECT_EQ(total, norm_.dag.edge_count());
  EXPECT_EQ(seen.size(), norm_.dag.edge_count());
  EXPECT_EQ(result.orphan_edges, 0u);
}

TEST_P(SpProperty, CutsIffNotSeriesParallel) {
  const bool sp = is_series_parallel(norm_.dag);
  const auto result = grow_decomposition_forest(norm_.dag, rng_);
  EXPECT_EQ(result.cuts == 0, sp);
  EXPECT_EQ(result.forest.roots().size(), result.cuts + 1);
}

TEST_P(SpProperty, EndpointsChainThroughEveryTree) {
  // start(T)/end(T) must frame the spanned subgraph: every spanned node
  // lies on a path of tree edges; in particular the endpoints are spanned
  // (unless virtual).
  const auto result = grow_decomposition_forest(norm_.dag, rng_);
  for (const auto root : result.forest.roots()) {
    const auto spanned = result.forest.spanned_nodes(root);
    const std::set<NodeId> span_set(spanned.begin(), spanned.end());
    if (result.forest.start(root).valid()) {
      EXPECT_TRUE(span_set.count(result.forest.start(root)));
    }
    if (result.forest.end(root).valid()) {
      EXPECT_TRUE(span_set.count(result.forest.end(root)));
    }
  }
}

TEST_P(SpProperty, SubgraphSetIsLinearSize) {
  const auto set = series_parallel_subgraphs(graph_, rng_);
  EXPECT_GE(set.size(), graph_.node_count());
  EXPECT_LE(set.size(), 4 * graph_.node_count() + 8);
}

TEST_P(SpProperty, SubgraphNodesAreRealAndSorted) {
  const auto set = series_parallel_subgraphs(graph_, rng_);
  for (const auto& sg : set.subgraphs) {
    EXPECT_FALSE(sg.empty());
    EXPECT_TRUE(std::is_sorted(sg.begin(), sg.end()));
    EXPECT_TRUE(std::adjacent_find(sg.begin(), sg.end()) == sg.end());
    for (const NodeId n : sg) {
      EXPECT_LT(n.v, graph_.node_count());
    }
  }
}

TEST_P(SpProperty, SubgraphsAreWeaklyConnectedRegions) {
  // A candidate subgraph groups tasks that synergize when co-mapped; a
  // disconnected group would never reduce any transfer. Verify weak
  // connectivity within the (normalized) graph restricted to the subgraph.
  const auto set = series_parallel_subgraphs(graph_, rng_);
  for (const auto& sg : set.subgraphs) {
    if (sg.size() <= 1) continue;
    const std::set<NodeId> members(sg.begin(), sg.end());
    // BFS over undirected edges restricted to members.
    std::set<NodeId> visited{sg.front()};
    std::vector<NodeId> stack{sg.front()};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      auto visit = [&](NodeId w) {
        if (members.count(w) && !visited.count(w)) {
          visited.insert(w);
          stack.push_back(w);
        }
      };
      for (const EdgeId e : graph_.out_edges(v)) visit(graph_.dst(e));
      for (const EdgeId e : graph_.in_edges(v)) visit(graph_.src(e));
    }
    EXPECT_EQ(visited.size(), sg.size())
        << "disconnected candidate subgraph of size " << sg.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpProperty,
    ::testing::Values(SpCase{2, 0, 1}, SpCase{5, 0, 2}, SpCase{5, 3, 3},
                      SpCase{12, 0, 4}, SpCase{12, 6, 5}, SpCase{30, 0, 6},
                      SpCase{30, 15, 7}, SpCase{30, 60, 8},
                      SpCase{80, 0, 9}, SpCase{80, 40, 10},
                      SpCase{150, 0, 11}, SpCase{150, 100, 12},
                      SpCase{300, 30, 13}),
    [](const ::testing::TestParamInfo<SpCase>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_e" +
             std::to_string(param_info.param.extra_edges) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace spmap
