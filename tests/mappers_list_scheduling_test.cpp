#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/heft.hpp"
#include "mappers/peft.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

TEST(Heft, UpwardRanksDecreaseAlongChain) {
  const Dag d = chain_dag(4);
  const auto attrs = serial_streamable_attrs(4);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const auto rank = heft_upward_ranks(cost);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_GT(rank[i], rank[i + 1]);
  }
  // Exit task rank is its own mean execution time.
  EXPECT_NEAR(rank[3], cost.mean_exec_time(NodeId(3)), 1e-12);
}

TEST(Heft, ProducesValidMapping) {
  Rng rng(3);
  const Dag d = generate_sp_dag(50, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  HeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()));
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(Heft, AcceleratesEmbarrassinglyParallelFanOut) {
  // Source -> 8 independent heavy tasks -> sink. HEFT should offload some
  // work instead of serializing everything on the CPU.
  Dag d(10);
  for (std::uint32_t i = 1; i <= 8; ++i) {
    d.add_edge(NodeId(0), NodeId(i), 100.0);
    d.add_edge(NodeId(i), NodeId(9), 100.0);
  }
  const auto attrs = serial_streamable_attrs(10);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  HeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_LT(r.predicted_makespan, eval.default_mapping_makespan());
}

TEST(Heft, RespectsFpgaAreaGreedily) {
  const Dag d = chain_dag(8);
  const auto attrs = serial_streamable_attrs(8);  // area 10 per task
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/25.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  HeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_TRUE(cost.area_feasible(r.mapping));
}

TEST(Peft, OctIsZeroForExitTasks) {
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const auto oct = peft_oct(cost);
  const std::size_t m = p.device_count();
  for (std::size_t dd = 0; dd < m; ++dd) {
    EXPECT_DOUBLE_EQ(oct[2 * m + dd], 0.0);
  }
  // Interior tasks carry positive optimistic remaining cost.
  for (std::size_t dd = 0; dd < m; ++dd) {
    EXPECT_GT(oct[0 * m + dd], 0.0);
  }
}

TEST(Peft, ProducesValidMapping) {
  Rng rng(5);
  const Dag d = generate_sp_dag(50, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  PeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()));
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(Peft, HandlesForkJoinGraphs) {
  Dag d(6);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  d.add_edge(NodeId(0), NodeId(2), 100.0);
  d.add_edge(NodeId(1), NodeId(3), 100.0);
  d.add_edge(NodeId(2), NodeId(4), 100.0);
  d.add_edge(NodeId(3), NodeId(5), 100.0);
  d.add_edge(NodeId(4), NodeId(5), 100.0);
  const auto attrs = serial_streamable_attrs(6);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  PeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_LT(r.predicted_makespan, kInfeasible);
  EXPECT_LE(r.predicted_makespan, eval.default_mapping_makespan() + 1e-9);
}

TEST(ListScheduling, BothHandleSingleTask) {
  Dag d(1);
  TaskAttrs attrs = serial_streamable_attrs(1);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  HeftMapper heft;
  PeftMapper peft;
  EXPECT_NO_THROW(heft.map(eval));
  EXPECT_NO_THROW(peft.map(eval));
}

}  // namespace
}  // namespace spmap
