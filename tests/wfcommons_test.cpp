#include "workflows/wfcommons.hpp"

#include <gtest/gtest.h>

#include "model/platform.hpp"
#include "sched/evaluator.hpp"

namespace spmap {
namespace {

/// Minimal wfformat instance: split -> {a, b} -> merge with file-based
/// data flow. Sizes in bytes.
const char* kSample = R"({
  "name": "sample",
  "workflow": {
    "tasks": [
      {"name": "split", "runtimeInSeconds": 2.0,
       "files": [
         {"link": "output", "name": "chunk0", "sizeInBytes": 50000000},
         {"link": "output", "name": "chunk1", "sizeInBytes": 70000000}
       ]},
      {"name": "a", "runtimeInSeconds": 5.0, "parents": ["split"],
       "files": [
         {"link": "input", "name": "chunk0", "sizeInBytes": 50000000},
         {"link": "output", "name": "resA", "sizeInBytes": 10000000}
       ]},
      {"name": "b", "runtimeInSeconds": 4.0, "parents": ["split"],
       "files": [
         {"link": "input", "name": "chunk1", "sizeInBytes": 70000000},
         {"link": "output", "name": "resB", "sizeInBytes": 20000000}
       ]},
      {"name": "merge", "runtime": 1.0, "parents": ["a", "b"],
       "files": [
         {"link": "input", "name": "resA", "sizeInBytes": 10000000},
         {"link": "input", "name": "resB", "sizeInBytes": 20000000}
       ]}
    ]
  }
})";

TEST(WfCommons, ImportStructure) {
  Rng rng(1);
  const TaskGraph tg = import_wfcommons_json(kSample, rng);
  ASSERT_EQ(tg.dag.node_count(), 4u);
  ASSERT_EQ(tg.dag.edge_count(), 4u);
  // Name-preserving labels.
  EXPECT_EQ(tg.dag.label(NodeId(0)), "split");
  EXPECT_EQ(tg.dag.label(NodeId(3)), "merge");
  // Fork/join shape.
  EXPECT_EQ(tg.dag.out_degree(NodeId(0)), 2u);
  EXPECT_EQ(tg.dag.in_degree(NodeId(3)), 2u);
}

TEST(WfCommons, EdgeVolumesFromFiles) {
  Rng rng(2);
  const TaskGraph tg = import_wfcommons_json(kSample, rng);
  // split -> a carries chunk0 (50 MB); split -> b carries chunk1 (70 MB).
  for (const EdgeId e : tg.dag.out_edges(NodeId(0))) {
    const std::string& dst = tg.dag.label(tg.dag.dst(e));
    EXPECT_DOUBLE_EQ(tg.dag.data_mb(e), dst == "a" ? 50.0 : 70.0);
  }
  // a -> merge carries resA (10 MB).
  const EdgeId am = tg.dag.out_edges(NodeId(1)).front();
  EXPECT_DOUBLE_EQ(tg.dag.data_mb(am), 10.0);
}

TEST(WfCommons, RuntimeReproducedOnReferenceDevice) {
  // complexity is derived so that exec on a reference_gops device with
  // perfect parallelizability equals the recorded runtime.
  Rng rng(3);
  WfCommonsOptions options;
  const TaskGraph tg = import_wfcommons_json(kSample, rng, options);
  for (std::size_t i = 0; i < tg.dag.node_count(); ++i) {
    const NodeId n(i);
    const double data =
        std::max({tg.dag.in_data_mb(n), tg.dag.out_data_mb(n), 1.0});
    const double exec =
        tg.attrs.complexity[i] * data / 1000.0 / options.reference_gops;
    const double expected = (tg.dag.label(n) == "split")   ? 2.0
                            : (tg.dag.label(n) == "a")     ? 5.0
                            : (tg.dag.label(n) == "b")     ? 4.0
                                                           : 1.0;
    EXPECT_NEAR(exec, expected, 1e-9) << tg.dag.label(n);
  }
}

TEST(WfCommons, ImportedGraphIsMappable) {
  Rng rng(4);
  const TaskGraph tg = import_wfcommons_json(kSample, rng);
  const Platform p = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, p);
  const Evaluator eval(cost);
  EXPECT_GT(eval.default_mapping_makespan(), 0.0);
  EXPECT_LT(eval.default_mapping_makespan(), kInfeasible);
}

TEST(WfCommons, LegacyJobsArrayAndDefaults) {
  Rng rng(5);
  const char* legacy = R"({
    "workflow": {"jobs": [
      {"name": "x"},
      {"name": "y", "parents": ["x"]}
    ]}
  })";
  const TaskGraph tg = import_wfcommons_json(legacy, rng);
  ASSERT_EQ(tg.dag.node_count(), 2u);
  ASSERT_EQ(tg.dag.edge_count(), 1u);
  // No file data: default edge volume applies.
  EXPECT_DOUBLE_EQ(tg.dag.data_mb(EdgeId(0u)), 10.0);
  EXPECT_GT(tg.attrs.complexity[0], 0.0);  // default runtime
}

TEST(WfCommons, Errors) {
  Rng rng(6);
  EXPECT_THROW(import_wfcommons_json("{}", rng), Error);
  EXPECT_THROW(import_wfcommons_json(R"({"workflow": {}})", rng), Error);
  EXPECT_THROW(import_wfcommons_json(
                   R"({"workflow": {"tasks": [
                     {"name": "a", "parents": ["ghost"]}]}})",
                   rng),
               Error);
  // Duplicate names rejected.
  EXPECT_THROW(import_wfcommons_json(
                   R"({"workflow": {"tasks": [
                     {"name": "a"}, {"name": "a"}]}})",
                   rng),
               Error);
  // Cycles rejected.
  EXPECT_THROW(import_wfcommons_json(
                   R"({"workflow": {"tasks": [
                     {"name": "a", "parents": ["b"]},
                     {"name": "b", "parents": ["a"]}]}})",
                   rng),
               Error);
}

TEST(WfCommons, AugmentationFollowsSectionIVB) {
  // Import a wider instance and sanity-check the random augmentation.
  Rng rng(7);
  std::string big = R"({"workflow": {"tasks": [)";
  for (int i = 0; i < 200; ++i) {
    if (i) big += ",";
    big += R"({"name": "t)" + std::to_string(i) + R"("})";
  }
  big += "]}}";
  const TaskGraph tg = import_wfcommons_json(big, rng);
  int perfect = 0;
  for (std::size_t i = 0; i < tg.attrs.size(); ++i) {
    if (tg.attrs.parallelizability[i] == 1.0) ++perfect;
    EXPECT_GT(tg.attrs.streamability[i], 0.0);
  }
  EXPECT_GT(perfect, 60);
  EXPECT_LT(perfect, 140);
}

}  // namespace
}  // namespace spmap
