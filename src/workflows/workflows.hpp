#pragma once
/// \file workflows.hpp
/// Synthetic scientific-workflow generators (paper Section IV-D).
///
/// The paper evaluates on the fixed WfCommons-derived benchmark set of
/// Sukhoroslov and Gorokhovskii [29] (nine workflow families, 150
/// instances). That dataset is not bundled here; instead, each family's
/// published structural skeleton is re-generated synthetically:
///
///  * 1000genome   — per-chromosome fan-out of `individuals` tasks feeding
///                   merge/sifting, then mutation-overlap and frequency
///                   analyses;
///  * blast        — split, embarrassingly parallel `blastall`, merge;
///  * bwa          — split, parallel alignment, concat (data-heavy, low
///                   compute: no algorithm finds an acceleration — used as
///                   the paper's negative control);
///  * cycles       — ensemble of independent crop-simulation chains with a
///                   shared summary stage;
///  * epigenomics  — several lanes of long sequential filter chains merged
///                   at the end (almost perfectly series-parallel — the
///                   showcase for SP decomposition);
///  * montage      — image projection fan-out, pairwise fit, background
///                   model bottleneck, re-projection, heavy tail-end
///                   mosaicking (a few end tasks dominate the makespan);
///  * seismology   — wide flat fan-in of tiny deconvolution tasks (second
///                   negative control);
///  * soykb        — genomics pipeline: wide alignment stage into long
///                   per-sample chains, joint genotyping tail;
///  * srasearch    — parallel sequence searches, pairwise merge.
///
/// Task complexity and data volumes follow per-family profiles; tasks are
/// additionally augmented with the random parallelizability/streamability
/// model of Section IV-B, as the paper does.

#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "graph/task_attrs.hpp"
#include "util/rng.hpp"

namespace spmap {

enum class WorkflowFamily {
  Genome1000,
  Blast,
  Bwa,
  Cycles,
  Epigenomics,
  Montage,
  Seismology,
  Soykb,
  Srasearch,
};

/// Lower-case family name as used in the paper's Table I.
const char* workflow_family_name(WorkflowFamily family);

/// All nine families in Table I order.
std::vector<WorkflowFamily> all_workflow_families();

/// The seven families for which Table I reports results (bwa and
/// seismology are excluded: no algorithm finds an acceleration there).
std::vector<WorkflowFamily> table1_workflow_families();

struct WorkflowInstance {
  std::string name;  ///< e.g. "montage-50"
  Dag dag;
  TaskAttrs attrs;
};

/// Generates one instance. `width` scales the parallel breadth of the
/// family's skeleton (roughly: number of inputs / lanes / samples).
WorkflowInstance generate_workflow(WorkflowFamily family, std::size_t width,
                                   Rng& rng);

/// A graded set of instances per family, mimicking the size range of the
/// benchmark set of [29]. `instances` sizes are interpolated between small
/// and `max_width`.
std::vector<WorkflowInstance> workflow_benchmark_set(WorkflowFamily family,
                                                     std::size_t instances,
                                                     std::size_t max_width,
                                                     Rng& rng);

}  // namespace spmap
