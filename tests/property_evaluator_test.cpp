/// Parameterized property suite for the model-based evaluator: simulation
/// invariants that must hold for every (graph, platform, mapping)
/// combination.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"

namespace spmap {
namespace {

struct EvalCase {
  std::size_t nodes;
  std::size_t extra_edges;
  std::uint64_t seed;
};

class EvaluatorProperty : public ::testing::TestWithParam<EvalCase> {
 protected:
  EvaluatorProperty() : rng_(GetParam().seed), platform_(reference_platform()) {
    Dag base = generate_sp_dag(GetParam().nodes, rng_);
    dag_ = add_random_edges(base, GetParam().extra_edges, rng_);
    attrs_ = random_task_attrs(dag_, rng_);
    cost_.emplace(dag_, attrs_, platform_);
    eval_.emplace(*cost_, EvalParams{.random_orders = 20});
  }

  /// A random area-feasible mapping.
  Mapping random_mapping() {
    Mapping m(dag_.node_count(), platform_.default_device());
    for (auto& d : m.device) {
      d = DeviceId(rng_.below(platform_.device_count()));
    }
    // Repair FPGA overflow.
    for (const DeviceId f : platform_.fpga_devices()) {
      for (std::size_t i = 0; i < m.size() && !cost_->area_feasible(m); ++i) {
        if (m.device[i] == f) m.device[i] = platform_.default_device();
      }
    }
    return m;
  }

  Rng rng_;
  Platform platform_;
  Dag dag_;
  TaskAttrs attrs_;
  std::optional<CostModel> cost_;
  std::optional<Evaluator> eval_;
};

TEST_P(EvaluatorProperty, MakespanIsFiniteAndPositive) {
  for (int rep = 0; rep < 5; ++rep) {
    const Mapping m = random_mapping();
    const double ms = eval_->evaluate(m);
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, kInfeasible);
  }
}

TEST_P(EvaluatorProperty, DeterministicAcrossCalls) {
  const Mapping m = random_mapping();
  EXPECT_DOUBLE_EQ(eval_->evaluate(m), eval_->evaluate(m));
}

TEST_P(EvaluatorProperty, MinOverOrdersIsMinimum) {
  const Mapping m = random_mapping();
  const double best = eval_->evaluate(m);
  for (const auto& order : eval_->orders()) {
    EXPECT_LE(best, eval_->evaluate_order(m, order) + 1e-12);
  }
}

TEST_P(EvaluatorProperty, CriticalPathLowerBound) {
  // No schedule can beat the longest path of min-device exec times.
  const auto topo = topological_order(dag_);
  std::vector<double> dist(dag_.node_count(), 0.0);
  double lb = 0.0;
  for (const NodeId v : topo) {
    dist[v.v] += cost_->min_exec_time(v);
    lb = std::max(lb, dist[v.v]);
    for (const EdgeId e : dag_.out_edges(v)) {
      dist[dag_.dst(e).v] = std::max(dist[dag_.dst(e).v], dist[v.v]);
    }
  }
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_GE(eval_->evaluate(random_mapping()) + 1e-9, lb);
  }
}

TEST_P(EvaluatorProperty, TotalWorkUpperBound) {
  // No schedule is worse than running everything serially on the slowest
  // device plus every transfer paid serially.
  double ub = cost_->max_serial_time();
  for (std::size_t e = 0; e < dag_.edge_count(); ++e) {
    double worst = 0.0;
    for (std::size_t a = 0; a < platform_.device_count(); ++a) {
      for (std::size_t b = 0; b < platform_.device_count(); ++b) {
        if (a != b) {
          worst = std::max(worst, cost_->transfer_time(EdgeId(e), DeviceId(a),
                                                       DeviceId(b)));
        }
      }
    }
    ub += worst;
  }
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_LE(eval_->evaluate(random_mapping()), ub + 1e-9);
  }
}

TEST_P(EvaluatorProperty, AllCpuBaselineIndependentOfSchedule) {
  // Without transfers and with symmetric slots, every topological order of
  // the all-CPU mapping must respect precedence; the makespan varies by
  // order, but it can never drop below total CPU work / slots.
  const Mapping m = eval_->default_mapping();
  double total = 0.0;
  for (std::size_t i = 0; i < dag_.node_count(); ++i) {
    total += cost_->exec_time(NodeId(i), platform_.default_device());
  }
  const double slots = static_cast<double>(
      platform_.device(platform_.default_device()).slots);
  EXPECT_GE(eval_->evaluate(m) + 1e-9, total / slots);
}

TEST_P(EvaluatorProperty, MovingZeroComplexityTaskIsFreeOnSameDevice) {
  // A zero-complexity task costs nothing anywhere; mapping it elsewhere
  // only adds transfers, so the all-CPU makespan is never beaten by moving
  // only such a task... but with zero *data*, it is exactly equal.
  TaskAttrs attrs = attrs_;
  const NodeId victim(0);
  attrs.complexity[victim.v] = 0.0;
  attrs.area[victim.v] = 0.0;
  const CostModel cost(dag_, attrs, platform_);
  const Evaluator eval(cost);
  Mapping base = eval.default_mapping();
  const double baseline = eval.evaluate(base);
  Mapping moved = base;
  moved[victim] = DeviceId(1u);
  // Moving it can only add transfer cost.
  EXPECT_GE(eval.evaluate(moved) + 1e-12, baseline);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EvaluatorProperty,
    ::testing::Values(EvalCase{2, 0, 21}, EvalCase{8, 0, 22},
                      EvalCase{8, 4, 23}, EvalCase{25, 0, 24},
                      EvalCase{25, 12, 25}, EvalCase{60, 0, 26},
                      EvalCase{60, 30, 27}, EvalCase{120, 60, 28},
                      EvalCase{250, 50, 29}),
    [](const ::testing::TestParamInfo<EvalCase>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_e" +
             std::to_string(param_info.param.extra_edges) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace spmap
