#pragma once
/// \file wfcommons.hpp
/// Importer for WfCommons workflow instances (wfformat JSON).
///
/// The paper's Table I uses workflow instances derived from the WfCommons
/// project [26] via the benchmark set of Sukhoroslov & Gorokhovskii [29].
/// This repository ships synthetic recreations (workflows.hpp); if you have
/// real wfformat files, this importer turns them into spmap task graphs:
///
///  * one task-graph node per workflow task;
///  * one edge per parent/child relation, carrying the data volume of the
///    files the child reads among the parent's outputs (file-name matching;
///    falls back to a configurable default when no file data is present);
///  * task complexity is derived from the recorded runtime and data volume
///    so that the task takes `runtime` seconds on the reference CPU;
///  * parallelizability and streamability are drawn per Section IV-B, as
///    the paper does for its own recreation ("augment these tasks by random
///    parallelizability and streamability values").
///
/// Supported schema subset (wfformat 1.x): top-level `workflow` object with
/// a `tasks` (or legacy `jobs`) array; each task has `name`, optional
/// `runtime` / `runtimeInSeconds`, optional `parents` array, optional
/// `files` array with `link` ("input"/"output"), `name` and
/// `sizeInBytes` (or `size`).

#include <string>

#include "graph/io.hpp"
#include "util/rng.hpp"

namespace spmap {

struct WfCommonsOptions {
  /// Reference throughput used to convert runtimes into complexity: a task
  /// with runtime r and data d gets complexity = r * reference_gops * 1000
  /// / d, so it runs in exactly r seconds on a device with this speed.
  double reference_gops = 9.6;  // one slot of the reference Epyc, p = 1
  /// Data volume per edge when the instance carries no file information.
  double default_edge_mb = 10.0;
  /// Runtime assumed for tasks without one (seconds).
  double default_runtime_s = 1.0;
  /// FPGA area demand per unit of derived complexity.
  double area_per_complexity = 1.0;
};

/// Parses a wfformat JSON document into a task graph. Throws spmap::Error
/// on malformed documents (unknown parents, cycles, negative sizes).
TaskGraph import_wfcommons_json(const std::string& text, Rng& rng,
                                const WfCommonsOptions& options = {});

}  // namespace spmap
