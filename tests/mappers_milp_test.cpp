#include "mappers/milp_mappers.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

MilpMapperParams quick(double seconds = 5.0) {
  MilpMapperParams p;
  p.time_limit_s = seconds;
  return p;
}

TEST(WgdpDevice, BalancesLoadAcrossDevices) {
  // 4 independent tasks (plus source/sink structure not needed): the
  // device MILP splits them between CPU and FPGA instead of stacking all
  // on one device.
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  d.add_edge(NodeId(2), NodeId(3), 100.0);
  const auto attrs = serial_streamable_attrs(4);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  WgdpDeviceMapper mapper(quick());
  const MapperResult r = mapper.map(eval);
  ASSERT_EQ(mapper.last_status(), MipStatus::Optimal);
  // FPGA is 10x faster: optimal load balance puts everything there.
  std::size_t on_fpga = 0;
  for (DeviceId dev : r.mapping.device) on_fpga += dev.v == 1;
  EXPECT_EQ(on_fpga, 4u);
}

TEST(WgdpDevice, RespectsAreaBudget) {
  const Dag d = chain_dag(6);
  const auto attrs = serial_streamable_attrs(6);  // area 10 each
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/25.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  WgdpDeviceMapper mapper(quick());
  const MapperResult r = mapper.map(eval);
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  std::size_t on_fpga = 0;
  for (DeviceId dev : r.mapping.device) on_fpga += dev.v == 1;
  EXPECT_LE(on_fpga, 2u);  // 3 tasks would need 30 > 25 area
}

TEST(WgdpTime, AcceleratesChainViaStreaming) {
  // The time MILP is streaming-aware: mapping the whole chain to the FPGA
  // is optimal despite the expensive boundary transfers.
  const Dag d = chain_dag(4);
  const auto attrs = serial_streamable_attrs(4);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  WgdpTimeMapper mapper(quick(10.0));
  const MapperResult r = mapper.map(eval);
  ASSERT_TRUE(mapper.last_status() == MipStatus::Optimal ||
              mapper.last_status() == MipStatus::Feasible);
  EXPECT_LT(r.predicted_makespan, eval.default_mapping_makespan());
}

TEST(WgdpTime, WarmStartGuaranteesMappingUnderTinyLimit) {
  Rng rng(3);
  const Dag d = generate_sp_dag(15, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  WgdpTimeMapper mapper(quick(1e-6));
  const MapperResult r = mapper.map(eval);
  EXPECT_TRUE(mapper.last_timed_out());
  EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(ZhouLiu, OptimalOnTinyGraph) {
  // 3-task chain: detailed MILP must find something at least as good as
  // the trivial all-CPU schedule and produce a feasible mapping.
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  ZhouLiuMapper mapper(quick(10.0));
  const MapperResult r = mapper.map(eval);
  ASSERT_TRUE(mapper.last_status() == MipStatus::Optimal ||
              mapper.last_status() == MipStatus::Feasible);
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(ZhouLiu, TimesOutGracefullyOnLargerGraphs) {
  // The paper reports ZhouLiu timing out beyond 20 tasks; under a tight
  // limit it must still return the warm-start (all-CPU) mapping or better.
  Rng rng(5);
  const Dag d = generate_sp_dag(20, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  ZhouLiuMapper mapper(quick(0.2));
  const MapperResult r = mapper.map(eval);
  EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(MilpMappers, AllProduceValidMappingsOnRandomGraph) {
  Rng rng(7);
  const Dag d = generate_sp_dag(8, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);

  WgdpDeviceMapper dev(quick());
  WgdpTimeMapper time(quick());
  ZhouLiuMapper zhou(quick());
  for (Mapper* mapper : std::initializer_list<Mapper*>{&dev, &time, &zhou}) {
    const MapperResult r = mapper->map(eval);
    EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()))
        << mapper->name();
    EXPECT_TRUE(cost.area_feasible(r.mapping)) << mapper->name();
  }
}

}  // namespace
}  // namespace spmap
