#include "serve/wire.hpp"

#include <cstdint>
#include <utility>

#include "util/error.hpp"

namespace spmap {

const char* to_string(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kFrameTooLong: return "frame_too_long";
    case WireErrorCode::kBadUtf8: return "bad_utf8";
    case WireErrorCode::kBadJson: return "bad_json";
    case WireErrorCode::kBadHandshake: return "bad_handshake";
    case WireErrorCode::kHandshakeRequired: return "handshake_required";
    case WireErrorCode::kUnknownOp: return "unknown_op";
    case WireErrorCode::kBadRequest: return "bad_request";
    case WireErrorCode::kUnknownJob: return "unknown_job";
    case WireErrorCode::kUnknownSession: return "unknown_session";
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kDraining: return "draining";
    case WireErrorCode::kIdleTimeout: return "idle_timeout";
    case WireErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

bool is_valid_utf8(std::string_view data) {
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    std::size_t len;
    std::uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xe0) == 0xc0) {
      len = 2;
      cp = c & 0x1f;
    } else if ((c & 0xf0) == 0xe0) {
      len = 3;
      cp = c & 0x0f;
    } else if ((c & 0xf8) == 0xf0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // continuation byte or 0xf8+ lead
    }
    if (i + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      const unsigned char cc = static_cast<unsigned char>(data[i + k]);
      if ((cc & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (cc & 0x3f);
    }
    // Overlong encodings, UTF-16 surrogates and > U+10FFFF are invalid.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || (cp >= 0xd800 && cp <= 0xdfff) ||
        cp > 0x10ffff) {
      return false;
    }
    i += len;
  }
  return true;
}

bool FrameReader::feed(const char* data, std::size_t size,
                       std::vector<std::string>& out) {
  if (overflowed_) return false;
  for (std::size_t i = 0; i < size; ++i) {
    const char c = data[i];
    if (c == '\n') {
      // Tolerate CRLF peers: the codec is newline-delimited, a trailing
      // '\r' is the client's line discipline, not payload.
      if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
      out.push_back(std::move(buffer_));
      buffer_.clear();
      continue;
    }
    if (buffer_.size() >= max_frame_bytes_) {
      overflowed_ = true;
      buffer_.clear();
      return false;
    }
    buffer_.push_back(c);
  }
  return true;
}

std::optional<WireErrorCode> parse_frame(const std::string& line, Frame& out,
                                         std::string& message) {
  if (!is_valid_utf8(line)) {
    message = "frame is not valid UTF-8";
    return WireErrorCode::kBadUtf8;
  }
  Json body;
  try {
    body = Json::parse(line);
  } catch (const Error& ex) {
    message = ex.what();
    return WireErrorCode::kBadJson;
  }
  if (!body.is_object()) {
    message = "frame must be a JSON object";
    return WireErrorCode::kBadJson;
  }
  if (!body.contains("op") || !body.at("op").is_string()) {
    message = "frame without a string \"op\"";
    return WireErrorCode::kBadRequest;
  }
  out.op = body.at("op").as_string();
  out.body = std::move(body);
  return std::nullopt;
}

std::string ok_line(Json body) {
  Json line = Json::object();
  line.set("ok", Json(true));
  for (auto& [key, value] : body.as_object()) {
    line.set(key, std::move(value));
  }
  return line.dump() + "\n";
}

std::string error_line(WireErrorCode code, const std::string& message,
                       Json extra) {
  Json line = Json::object();
  line.set("ok", Json(false));
  for (auto& [key, value] : extra.as_object()) {
    line.set(key, std::move(value));
  }
  Json error = Json::object();
  error.set("code", Json(to_string(code)));
  error.set("message", Json(message));
  line.set("error", std::move(error));
  return line.dump() + "\n";
}

std::string event_line(const std::string& event, Json body) {
  Json line = Json::object();
  line.set("event", Json(event));
  for (auto& [key, value] : body.as_object()) {
    line.set(key, std::move(value));
  }
  return line.dump() + "\n";
}

}  // namespace spmap
