#pragma once
/// \file thread_pool.hpp
/// Persistent worker pool with deterministic parallel loops.
///
/// The pool exists for the evaluator's batch API: many independent,
/// identically-shaped work items (candidate mappings) that each need a
/// per-worker scratch buffer. Work is split deterministically — for a given
/// (n, worker_count) every worker always receives the same indices — so any
/// computation whose items are independent produces bit-identical results
/// regardless of scheduling jitter. Two split shapes exist:
///
///  * `parallel_for` — one contiguous block per worker. Lowest dispatch
///    overhead, but a cost skew across items serializes the batch on the
///    worker that drew the expensive block.
///  * `parallel_for_chunks` — fixed-size chunks dealt round-robin (chunk c
///    goes to worker c % thread_count()). Skewed items spread across all
///    workers, and because the chunk→worker map depends only on (n, chunk
///    size), results stay deterministic for every thread count.
///
/// The calling thread participates as worker 0; a pool of `threads == 1`
/// spawns no OS threads at all and runs everything inline, so serial
/// callers pay nothing. Worker threads live until the pool is destroyed,
/// avoiding per-call thread spawn costs in generation loops that dispatch
/// thousands of small batches.
///
/// ## Exceptions
///
/// Every worker's exception is caught and collected; after the parallel
/// region completes, the exception of the lowest-indexed throwing worker is
/// rethrown on the calling thread (a deterministic choice), the rest are
/// logged to stderr as a suppressed count and exposed via
/// `last_suppressed_exception_count()`. Earlier versions kept only one
/// arbitrary racing winner and silently dropped the rest.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace spmap {

class ThreadPool {
 public:
  /// A pool with `threads` workers total (including the calling thread).
  /// `threads == 0` is promoted to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (calling thread + background threads).
  std::size_t thread_count() const { return thread_count_; }

  /// Runs `fn(begin, end, worker)` over a static partition of [0, n) into
  /// `thread_count()` contiguous blocks and blocks until all are done.
  /// Worker ids are in [0, thread_count()); the caller runs block 0.
  /// `fn` must not recurse into the same pool. See "Exceptions" above.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t begin, std::size_t end,
                               std::size_t worker)>& fn);

  /// Runs `fn(begin, end, worker)` once per chunk of [0, n): chunk c covers
  /// [c * chunk, min(n, (c+1) * chunk)) and runs on worker c %
  /// thread_count(), each worker taking its chunks in increasing order.
  /// The chunk→worker map is a pure function of (n, chunk), so independent
  /// items give bit-identical results across thread counts. `chunk == 0`
  /// is promoted to 1. Same contract as parallel_for otherwise.
  void parallel_for_chunks(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t begin, std::size_t end,
                               std::size_t worker)>& fn);

  /// Worker exceptions swallowed (not rethrown) by the most recent
  /// parallel_for/parallel_for_chunks call on this pool: total thrown minus
  /// the one rethrown. 0 when the last call succeeded. Atomic so a monitor
  /// thread polling it against an in-flight parallel region reads a clean
  /// (previous-call) value instead of a torn one.
  std::size_t last_suppressed_exception_count() const {
    return suppressed_count_.load(std::memory_order_acquire);
  }

  /// Block of worker `w` in the static partition of [0, n) over `workers`.
  static std::pair<std::size_t, std::size_t> partition(std::size_t n,
                                                       std::size_t workers,
                                                       std::size_t w);

 private:
  void worker_loop(std::size_t worker);
  /// Shared dispatch: `chunk == 0` means block mode (parallel_for), else
  /// chunked round-robin mode.
  void run_job(std::size_t n, std::size_t chunk,
               const std::function<void(std::size_t, std::size_t,
                                        std::size_t)>& fn);
  /// Runs worker `w`'s share of the current job shape, catching into
  /// errors_[w].
  void run_share(std::size_t n, std::size_t chunk, std::size_t worker,
                 const std::function<void(std::size_t, std::size_t,
                                          std::size_t)>& fn);

  std::size_t thread_count_ = 1;
  std::vector<std::thread> threads_;

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  // Job state, guarded by mutex_. errors_ has one slot per worker, each
  // written only by its owner while the job runs (read by the caller after
  // the job completes, with the pending_-handshake through mutex_ ordering
  // the writes before the read), so the first-thrower choice cannot race.
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_
      SPMAP_GUARDED_BY(mutex_) = nullptr;
  std::size_t job_n_ SPMAP_GUARDED_BY(mutex_) = 0;
  std::size_t job_chunk_ SPMAP_GUARDED_BY(mutex_) = 0;  // 0 = block mode
  std::uint64_t job_epoch_ SPMAP_GUARDED_BY(mutex_) = 0;  // per-call bump
  std::size_t pending_ SPMAP_GUARDED_BY(mutex_) = 0;  // workers still busy
  bool stop_ SPMAP_GUARDED_BY(mutex_) = false;
  /// One slot per worker: errors_[w] is written only by worker w during a
  /// job and read by the caller after the pending_ handshake, so slot
  /// accesses need no lock of their own; the vector itself is only
  /// *reshaped* (assign) under mutex_ between jobs.
  std::vector<std::exception_ptr> errors_;
  std::atomic<std::size_t> suppressed_count_{0};
};

}  // namespace spmap
