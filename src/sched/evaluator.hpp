#pragma once
/// \file evaluator.hpp
/// Linear-time model-based makespan evaluation (paper Sections II-B, III-A).
///
/// Given a mapping and a topological schedule order, the evaluator simulates
/// the system once, in O(V + E):
///  * each device executes its tasks in schedule order, at most one task
///    per execution slot at a time (a multicore CPU has several slots, so
///    independent tasks overlap even in the all-CPU baseline);
///  * an edge between tasks on different devices pays latency + volume /
///    bandwidth and occupies the *link* of both endpoint devices for its
///    duration — concurrent transfers through one PCIe attachment serialize
///    (the data-intensive modeling assumption of Wilhelm et al. [5]);
///    same-device edges are free;
///  * an edge between two tasks co-mapped on an FPGA *streams*: the consumer
///    may start `fill_fraction * exec(producer)` after the producer START
///    (pipeline overlap) instead of waiting for the producer to finish, and
///    it does not contend for the device (dataflow stages co-reside in
///    fabric);
///  * a mapping that overflows any FPGA's area budget is infeasible and
///    evaluates to +infinity.
///
/// Following Section IV-A, the makespan of a mapping is the minimum over a
/// breadth-first schedule and a configurable number of random topological
/// schedules (the paper uses 100 for reporting; the mapping inner loop uses
/// the breadth-first schedule only by default).

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/algorithms.hpp"
#include "model/cost_model.hpp"

namespace spmap {

struct EvalParams {
  /// Random schedules evaluated in addition to the breadth-first one.
  std::size_t random_orders = 0;
  /// Seed for generating the random schedules (fixed => reproducible).
  std::uint64_t seed = 0x5ced01e5;
};

/// Value returned for infeasible mappings.
inline constexpr double kInfeasible = std::numeric_limits<double>::infinity();

class Evaluator {
 public:
  /// The cost model must outlive the evaluator. Schedule orders are
  /// generated once at construction.
  explicit Evaluator(const CostModel& cost, EvalParams params = {});

  const CostModel& cost() const { return *cost_; }
  const Dag& dag() const { return cost_->dag(); }

  /// Makespan of `mapping` under one given topological order.
  double evaluate_order(const Mapping& mapping,
                        const std::vector<NodeId>& order) const;

  /// Makespan of `mapping`: minimum over the prepared schedule orders
  /// (breadth-first + random_orders randoms). +infinity if infeasible.
  double evaluate(const Mapping& mapping) const;

  /// Makespan with every task on the platform's default device — the
  /// baseline of the paper's "relative improvement" metric.
  double default_mapping_makespan() const;

  /// The default (all-CPU) mapping itself.
  Mapping default_mapping() const;

  /// Number of single-order evaluations performed so far (profiling aid).
  std::size_t evaluation_count() const { return eval_count_; }

  /// Per-task start/finish times of the most recent evaluate_order() call
  /// (schedule extraction; see sched/schedule.hpp).
  const std::vector<double>& last_start_times() const { return start_; }
  const std::vector<double>& last_finish_times() const { return finish_; }

  const std::vector<std::vector<NodeId>>& orders() const { return orders_; }

 private:
  const CostModel* cost_;
  std::vector<std::vector<NodeId>> orders_;  // [0] = breadth-first
  // Scratch buffers reused across evaluations (single-threaded use).
  mutable std::vector<double> start_;
  mutable std::vector<double> finish_;
  mutable std::vector<double> slot_ready_;  // flattened per (device, slot)
  mutable std::vector<double> link_ready_;  // per device
  std::vector<std::size_t> slot_offset_;    // device -> first slot index
  mutable std::size_t eval_count_ = 0;
};

}  // namespace spmap
