#include "model/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace spmap {

namespace {

constexpr double kMaxExec = std::numeric_limits<double>::max();

double device_speed_gops(const Device& dev, const TaskAttrs& attrs,
                         NodeId n) {
  switch (dev.kind) {
    case DeviceKind::Cpu:
    case DeviceKind::Gpu:
      return dev.lane_gops *
             amdahl_speedup(attrs.parallelizability[n.v],
                            dev.lanes_per_slot());
    case DeviceKind::Fpga:
      return dev.stream_gops_per_streamability *
             std::max(attrs.streamability[n.v], 1e-9);
  }
  return 1e-9;
}

}  // namespace

CostModel::CostModel(const Dag& dag, const TaskAttrs& attrs,
                     const Platform& platform)
    : dag_(&dag), attrs_(&attrs), platform_(&platform) {
  attrs.validate(dag);
  platform.validate();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  data_mb_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node(i);
    data_mb_[i] = std::max(dag.in_data_mb(node), dag.out_data_mb(node));
  }

  exec_.resize(n * m);
  mean_exec_.resize(n);
  min_exec_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node(i);
    const double work_mops = attrs.complexity[i] * data_mb_[i];
    double sum = 0.0;
    double best = kMaxExec;
    for (std::size_t d = 0; d < m; ++d) {
      const double speed =
          device_speed_gops(platform.device(DeviceId(d)), attrs, node);
      // work is in M point-ops, speed in G point-ops/s.
      const double t = work_mops / 1000.0 / speed;
      exec_[i * m + d] = t;
      sum += t;
      best = std::min(best, t);
    }
    mean_exec_[i] = sum / static_cast<double>(m);
    min_exec_[i] = m > 0 ? best : 0.0;
  }

  // Per-pair means behind mean_transfer_time: the mean over ordered
  // distinct pairs distributes over latency + volume / bandwidth.
  if (m >= 2) {
    double lat_sum = 0.0;
    double inv_bw_sum = 0.0;
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = 0; b < m; ++b) {
        if (a == b) continue;
        lat_sum += platform.latency_s(DeviceId(a), DeviceId(b));
        inv_bw_sum += 1.0 / platform.bandwidth_gbps(DeviceId(a), DeviceId(b));
      }
    }
    const auto pairs = static_cast<double>(m * (m - 1));
    mean_latency_s_ = lat_sum / pairs;
    mean_inv_bandwidth_ = inv_bw_sum / pairs;
  }

  fpga_devices_ = platform.fpga_devices();
}

double CostModel::mapped_area(const Mapping& m, DeviceId d) const {
  double total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.device[i] == d) total += attrs_->area[i];
  }
  return total;
}

bool CostModel::area_feasible(const Mapping& m) const {
  for (DeviceId f : fpga_devices_) {
    if (mapped_area(m, f) > platform_->device(f).area_budget) return false;
  }
  return true;
}

Mapping random_feasible_mapping(const CostModel& cost, Rng& rng) {
  const Platform& platform = cost.platform();
  Mapping m(cost.dag().node_count(), platform.default_device());
  for (auto& d : m.device) {
    d = DeviceId(rng.below(platform.device_count()));
  }
  for (const DeviceId f : platform.fpga_devices()) {
    const double budget = platform.device(f).area_budget;
    double used = cost.mapped_area(m, f);
    for (std::size_t i = 0; i < m.size() && used > budget; ++i) {
      if (m.device[i] == f) {
        m.device[i] = platform.default_device();
        used -= cost.area(NodeId(i));
      }
    }
  }
  return m;
}

double CostModel::max_serial_time() const {
  const std::size_t m = platform_->device_count();
  double total = 0.0;
  for (std::size_t i = 0; i < dag_->node_count(); ++i) {
    double worst = 0.0;
    for (std::size_t d = 0; d < m; ++d) {
      worst = std::max(worst, exec_[i * m + d]);
    }
    total += worst;
  }
  return total;
}

}  // namespace spmap
