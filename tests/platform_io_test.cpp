/// Platform JSON coverage: parse -> serialize -> parse round-trips, the
/// committed scenarios/platforms/ files staying in sync with the code, and
/// registry-style diagnostics on unknown keys / kinds / device references.

#include <gtest/gtest.h>

#include "model/platform_io.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

void expect_platforms_equal(const Platform& a, const Platform& b) {
  ASSERT_EQ(a.device_count(), b.device_count());
  for (std::size_t i = 0; i < a.device_count(); ++i) {
    const Device& da = a.device(DeviceId(i));
    const Device& db = b.device(DeviceId(i));
    EXPECT_EQ(da.name, db.name);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.lanes, db.lanes);
    EXPECT_EQ(da.lane_gops, db.lane_gops);
    EXPECT_EQ(da.slots, db.slots);
    EXPECT_EQ(da.area_budget, db.area_budget);
    EXPECT_EQ(da.stream_gops_per_streamability,
              db.stream_gops_per_streamability);
    EXPECT_EQ(da.stream_fill_fraction, db.stream_fill_fraction);
    EXPECT_EQ(da.idle_watts, db.idle_watts);
    EXPECT_EQ(da.active_watts, db.active_watts);
    EXPECT_EQ(da.transfer_watts, db.transfer_watts);
  }
  for (std::size_t x = 0; x < a.device_count(); ++x) {
    for (std::size_t y = 0; y < a.device_count(); ++y) {
      if (x == y) continue;
      EXPECT_EQ(a.bandwidth_gbps(DeviceId(x), DeviceId(y)),
                b.bandwidth_gbps(DeviceId(x), DeviceId(y)));
      EXPECT_EQ(a.latency_s(DeviceId(x), DeviceId(y)),
                b.latency_s(DeviceId(x), DeviceId(y)));
    }
  }
}

TEST(PlatformIo, ReferencePlatformRoundTrips) {
  const Platform reference = reference_platform();
  const Json doc = platform_to_json(reference, "paper-cpu-gpu-fpga");
  const NamedPlatform parsed = platform_from_json(doc);
  EXPECT_EQ(parsed.name, "paper-cpu-gpu-fpga");
  expect_platforms_equal(reference, parsed.platform);
  // Serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(doc.dump(2),
            platform_to_json(parsed.platform, parsed.name).dump(2));
}

TEST(PlatformIo, CommittedPaperPlatformMatchesReference) {
  const NamedPlatform committed = load_platform_file(
      std::string(SPMAP_SCENARIO_DIR) + "/platforms/paper_cpu_gpu_fpga.json");
  EXPECT_EQ(committed.name, "paper-cpu-gpu-fpga");
  expect_platforms_equal(reference_platform(), committed.platform);
}

TEST(PlatformIo, CommittedVariantPlatformsParseAndRoundTrip) {
  for (const char* file : {"/platforms/cpu_gpu.json",
                           "/platforms/dual_fpga.json"}) {
    const NamedPlatform p =
        load_platform_file(std::string(SPMAP_SCENARIO_DIR) + file);
    EXPECT_FALSE(p.name.empty()) << file;
    const Json doc = platform_to_json(p.platform, p.name);
    const NamedPlatform again = platform_from_json(doc);
    expect_platforms_equal(p.platform, again.platform);
    EXPECT_EQ(doc.dump(2),
              platform_to_json(again.platform, again.name).dump(2))
        << file;
  }
}

TEST(PlatformIo, UnknownDeviceKeyThrowsListingAccepted) {
  Json doc = platform_to_json(reference_platform(), "p");
  Json::Array devices = doc.at("devices").as_array();
  devices[0].set("lane_flops", 1.0);
  doc.set("devices", Json(std::move(devices)));
  try {
    platform_from_json(doc);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lane_flops"), std::string::npos);
    EXPECT_NE(what.find("lane_gops"), std::string::npos)
        << "error should list accepted keys: " << what;
  }
}

TEST(PlatformIo, UnknownKindThrows) {
  const char* text = R"({"schema": "spmap-platform/1",
    "devices": [{"name": "x", "kind": "tpu"}], "links": []})";
  try {
    platform_from_json_text(text);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fpga"), std::string::npos);
  }
}

TEST(PlatformIo, WrongSchemaThrows) {
  EXPECT_THROW(platform_from_json_text(
                   R"({"schema": "spmap-platform/9", "devices": []})"),
               Error);
  EXPECT_THROW(platform_from_json_text(R"({"devices": []})"), Error);
}

TEST(PlatformIo, DuplicateDeviceNameThrows) {
  const char* text = R"({"schema": "spmap-platform/1", "devices": [
    {"name": "a", "kind": "cpu"}, {"name": "a", "kind": "gpu"}],
    "links": [{"a": "a", "b": "a", "bandwidth_gbps": 1, "latency_s": 0}]})";
  EXPECT_THROW(platform_from_json_text(text), Error);
}

TEST(PlatformIo, LinkToUnknownDeviceThrowsListingDevices) {
  const char* text = R"({"schema": "spmap-platform/1", "devices": [
    {"name": "a", "kind": "cpu"}, {"name": "b", "kind": "cpu"}],
    "links": [{"a": "a", "b": "c", "bandwidth_gbps": 1, "latency_s": 0}]})";
  try {
    platform_from_json_text(text);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'c'"), std::string::npos);
    EXPECT_NE(what.find("a, b"), std::string::npos)
        << "error should list devices: " << what;
  }
}

TEST(PlatformIo, MissingLinkFailsValidation) {
  const char* text = R"({"schema": "spmap-platform/1", "devices": [
    {"name": "a", "kind": "cpu"}, {"name": "b", "kind": "cpu"}],
    "links": []})";
  EXPECT_THROW(platform_from_json_text(text), Error);
}

TEST(PlatformIo, FillFractionDefaultsAndOmittedFields) {
  // Kind-irrelevant fields may be omitted; defaults match Device{}.
  const char* text = R"({"schema": "spmap-platform/1", "devices": [
    {"name": "cpu0", "kind": "cpu", "lanes": 4, "lane_gops": 2},
    {"name": "fpga0", "kind": "fpga", "area_budget": 10,
     "stream_gops_per_streamability": 0.5}],
    "links": [{"a": "cpu0", "b": "fpga0", "bandwidth_gbps": 1,
               "latency_s": 0.0001}]})";
  const NamedPlatform p = platform_from_json_text(text);
  EXPECT_EQ(p.platform.device(DeviceId(1u)).stream_fill_fraction, 0.1);
  EXPECT_EQ(p.platform.device(DeviceId(0u)).slots, 1u);
}

}  // namespace
}  // namespace spmap
