#pragma once
/// \file flags.hpp
/// Minimal command-line flag parser for the bench and example binaries.
///
/// Supported syntax: `--name=value`, `--name value`, and bare boolean
/// `--name`. Unknown flags raise spmap::Error so typos in experiment sweeps
/// fail loudly instead of silently running the default configuration.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spmap {

/// Parsed command-line flags with typed accessors and defaults.
class Flags {
 public:
  /// Parses argv; `known` lists the accepted flag names (without `--`).
  Flags(int argc, const char* const* argv,
        const std::vector<std::string>& known);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Parses a comma-separated integer list flag, e.g. `--sizes=5,10,15`.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace spmap
