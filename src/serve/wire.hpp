#pragma once
/// \file wire.hpp
/// The `spmap-wire/1` frame codec: newline-delimited JSON over a stream.
///
/// One frame is one UTF-8 JSON object on one line, terminated by '\n'.
/// Requests carry an `"op"` verb (`hello`, `submit`, `status`, `stats`,
/// `cancel`, `subscribe`, `drain`); responses answer in request order with
/// `{"ok":true,...}` or `{"ok":false,"error":{"code","message"}}`;
/// server-initiated pushes carry `"event"` instead of `"ok"`
/// (`incumbent`, `done`, `draining`, `closing`). docs/SERVING.md is the
/// authoritative protocol reference; this header is the mechanical layer
/// shared by the daemon, the session FSM and every client: splitting a
/// byte stream into frames (partial reads, oversized-line protection) and
/// validating/parsing one frame into a verb + body.
///
/// ## Thread-safety
///
/// FrameReader is a single-owner accumulator (one per connection, used
/// from that connection's IO thread). The free functions are pure.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace spmap {

/// Protocol identifier exchanged in the handshake.
inline constexpr const char* kWireProtocol = "spmap-wire/1";

/// Frames longer than this (excluding '\n') poison the connection by
/// default; generous enough for multi-thousand-task inline graphs.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Structured error codes of `spmap-wire/1` (the `error.code` strings on
/// the wire; see docs/SERVING.md for which codes close the session).
enum class WireErrorCode {
  kFrameTooLong,       ///< line exceeded the frame limit (closes)
  kBadUtf8,            ///< frame is not valid UTF-8 (closes)
  kBadJson,            ///< frame is not a JSON object (closes)
  kBadHandshake,       ///< first frame was not a valid hello (closes)
  kHandshakeRequired,  ///< op before a completed handshake (closes)
  kUnknownOp,          ///< unrecognized verb (session survives)
  kBadRequest,         ///< malformed/missing fields (session survives)
  kUnknownJob,         ///< job id the server does not know
  kUnknownSession,     ///< resume token the server does not know/expired
  kOverloaded,         ///< admission rejected: queue full for the class
  kDraining,           ///< server is draining; no new work accepted
  kIdleTimeout,        ///< session closed for inactivity
  kInternal,           ///< unexpected server-side failure
};

/// Stable wire string ("frame_too_long", "bad_utf8", ...).
const char* to_string(WireErrorCode code);

/// True iff `data` is well-formed UTF-8 (rejects overlong encodings,
/// surrogates, and > U+10FFFF). The JSON layer below does not check raw
/// string bytes, so the wire does.
bool is_valid_utf8(std::string_view data);

/// Splits a byte stream into newline-terminated frames. Feed raw reads;
/// complete lines come out (without '\n'); a partial line waits for more
/// bytes. A line exceeding `max_frame_bytes` latches `overflowed()` and
/// stops producing frames — the connection is poisoned and must close
/// (resynchronizing inside a stream of unbounded garbage is not worth
/// the risk of misparsing).
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends complete frames to `out`; returns false once overflowed.
  bool feed(const char* data, std::size_t size,
            std::vector<std::string>& out);
  bool feed(std::string_view data, std::vector<std::string>& out) {
    return feed(data.data(), data.size(), out);
  }

  bool overflowed() const { return overflowed_; }
  /// Bytes of the pending partial frame.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool overflowed_ = false;
};

/// One parsed request frame.
struct Frame {
  std::string op;
  Json body;  ///< the whole frame object (op included)
};

/// Validates and parses one frame line. On failure returns the error code
/// and fills `message` with the human diagnostic; on success fills `out`.
std::optional<WireErrorCode> parse_frame(const std::string& line, Frame& out,
                                         std::string& message);

// ---- response/event builders (each returns one '\n'-terminated line) ----

/// `{"ok":true, ...body}` — body must be an object.
std::string ok_line(Json body);

/// `{"ok":false, ...extra, "error":{"code":...,"message":...}}`.
std::string error_line(WireErrorCode code, const std::string& message,
                       Json extra = Json::object());

/// `{"event":"<event>", ...body}`.
std::string event_line(const std::string& event, Json body);

}  // namespace spmap
