#include "mappers/cpu_only.hpp"

namespace spmap {

MapperResult CpuOnlyMapper::map(const Evaluator& eval) {
  MapperResult result;
  result.mapping = eval.default_mapping();
  const std::size_t before = eval.evaluation_count();
  result.predicted_makespan = eval.evaluate(result.mapping);
  result.evaluations = eval.evaluation_count() - before;
  return result;
}

}  // namespace spmap
