/// The async MappingService job layer (serve/mapping_service.hpp): FIFO
/// jobs with status/poll/cancel/wait, results bit-identical for every
/// worker count, deterministic per-job seeds, and failure/cancellation
/// lifecycles.

#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "serve/mapping_service.hpp"
#include "sched/evaluator.hpp"

namespace spmap {
namespace {

std::shared_ptr<const TaskGraph> make_graph(std::uint64_t seed,
                                            std::size_t tasks = 30) {
  Rng rng(seed);
  auto tg = std::make_shared<TaskGraph>();
  tg->dag = generate_sp_dag(tasks, rng);
  tg->attrs = random_task_attrs(tg->dag, rng);
  return tg;
}

std::shared_ptr<const Platform> make_platform() {
  return std::make_shared<const Platform>(reference_platform());
}

MapJob make_job(const std::shared_ptr<const TaskGraph>& graph,
                const std::shared_ptr<const Platform>& platform,
                const std::string& spec) {
  MapJob job;
  job.mapper_spec = spec;
  job.graph = graph;
  job.platform = platform;
  return job;
}

TEST(MappingService, RunsJobsAndReportsResults) {
  const auto graph = make_graph(41);
  const auto platform = make_platform();
  MappingService service({.workers = 2});
  auto heft = service.submit(make_job(graph, platform, "heft"));
  auto spff = service.submit(make_job(graph, platform, "spff"));
  const MapJobResult& rh = heft.wait();
  const MapJobResult& rs = spff.wait();
  EXPECT_TRUE(rh.error.empty()) << rh.error;
  EXPECT_TRUE(rs.error.empty()) << rs.error;
  EXPECT_EQ(heft.status(), JobStatus::kDone);
  EXPECT_TRUE(heft.done());
  EXPECT_EQ(rh.report.termination, TerminationReason::kConverged);
  EXPECT_LT(rh.report.predicted_makespan, kInfeasible);
  EXPECT_EQ(rh.report.mapping.size(), graph->dag.node_count());
  // reporting skipped by default: reported == predicted, no baseline
  EXPECT_EQ(rh.reported_makespan, rh.report.predicted_makespan);
  EXPECT_EQ(rh.baseline_makespan, 0.0);
}

TEST(MappingService, ReportingProtocolMatchesDirectEvaluation) {
  const auto graph = make_graph(42);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  MapJob job = make_job(graph, platform, "heft");
  job.reporting_orders = 16;
  const auto handle = service.submit(std::move(job));
  const MapJobResult& r = handle.wait();
  ASSERT_TRUE(r.error.empty()) << r.error;

  const CostModel cost(graph->dag, graph->attrs, *platform);
  const Evaluator reporting(cost, {.random_orders = 16});
  EXPECT_EQ(r.baseline_makespan, reporting.default_mapping_makespan());
  EXPECT_EQ(r.reported_makespan, reporting.evaluate(r.report.mapping));
}

TEST(MappingService, ResultsBitIdenticalAcrossWorkerCounts) {
  const auto platform = make_platform();
  std::vector<std::shared_ptr<const TaskGraph>> graphs;
  for (std::uint64_t s = 0; s < 4; ++s) graphs.push_back(make_graph(50 + s));
  const std::vector<std::string> specs{"heft", "spff",
                                       "anneal:iters=500,seed=3", "sn"};

  auto run_all = [&](std::size_t workers) {
    MappingService service({.workers = workers});
    std::vector<MappingService::JobHandle> handles;
    for (const auto& graph : graphs) {
      for (const auto& spec : specs) {
        MapJob job = make_job(graph, platform, spec);
        job.reporting_orders = 8;
        handles.push_back(service.submit(std::move(job)));
      }
    }
    std::vector<MapJobResult> results;
    for (auto& h : handles) results.push_back(h.wait());
    return results;
  };

  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].error.empty()) << serial[i].error;
    EXPECT_EQ(serial[i].report.mapping, parallel[i].report.mapping) << i;
    EXPECT_EQ(serial[i].report.predicted_makespan,
              parallel[i].report.predicted_makespan)
        << i;
    EXPECT_EQ(serial[i].reported_makespan, parallel[i].reported_makespan)
        << i;
    EXPECT_EQ(serial[i].baseline_makespan, parallel[i].baseline_makespan)
        << i;
  }
}

TEST(MappingService, DerivedJobSeedsAreDeterministic) {
  const auto graph = make_graph(60);
  const auto platform = make_platform();
  // "sp" consumes the construction rng (random cut policy): two services
  // with the same seed must derive the same per-job streams; a different
  // service seed may not. Unseeded stochastic mappers draw from the same
  // stream too.
  auto run_one = [&](std::uint64_t seed) {
    MappingService service({.workers = 1, .seed = seed});
    const auto handle =
        service.submit(make_job(graph, platform, "anneal:iters=300"));
    const MapJobResult& r = handle.wait();
    EXPECT_TRUE(r.error.empty()) << r.error;
    return r.report.mapping;
  };
  const Mapping a = run_one(7);
  const Mapping b = run_one(7);
  EXPECT_EQ(a, b);
}

TEST(MappingService, ExplicitConstructionRngPinsTheRun) {
  const auto graph = make_graph(61);
  const auto platform = make_platform();
  auto run_one = [&](std::uint64_t service_seed) {
    MappingService service({.workers = 1, .seed = service_seed});
    MapJob job = make_job(graph, platform, "anneal:iters=300");
    job.construction_rng = Rng(123);
    const auto handle = service.submit(std::move(job));
    const MapJobResult& r = handle.wait();
    EXPECT_TRUE(r.error.empty()) << r.error;
    return r.report.mapping;
  };
  // Different service seeds, same pinned rng: identical runs.
  EXPECT_EQ(run_one(1), run_one(2));
}

TEST(MappingService, FailedJobExplains) {
  const auto graph = make_graph(62);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  auto handle = service.submit(make_job(graph, platform, "hft"));
  const MapJobResult& r = handle.wait();
  EXPECT_EQ(handle.status(), JobStatus::kFailed);
  EXPECT_NE(r.error.find("unknown mapper"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("did you mean 'heft'?"), std::string::npos)
      << r.error;
}

TEST(MappingService, CancelQueuedJobSkipsExecution) {
  const auto graph = make_graph(63);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  // Occupy the single worker, then cancel a queued job before it runs.
  MapRequest slow;
  slow.deadline_ms = 200.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  auto queued = service.submit(make_job(graph, platform, "heft"));
  queued.cancel();
  EXPECT_EQ(queued.wait().error, "cancelled before execution");
  EXPECT_EQ(queued.status(), JobStatus::kCancelled);
  const MapJobResult& r = running.wait();
  EXPECT_TRUE(r.error.empty()) << r.error;
}

TEST(MappingService, CancelRunningJobReturnsIncumbent) {
  const auto graph = make_graph(64);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  auto handle = service.submit(
      make_job(graph, platform, "anneal:iters=500000000,restarts=4"));
  // Poll until the worker picked it up, then cancel cooperatively.
  while (handle.status() == JobStatus::kQueued) {
    std::this_thread::yield();
  }
  handle.cancel();
  const MapJobResult& r = handle.wait();
  EXPECT_EQ(handle.status(), JobStatus::kDone);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.report.termination, TerminationReason::kCancelled);
  EXPECT_LT(r.report.predicted_makespan, kInfeasible);
}

TEST(MappingService, WaitAllDrainsTheQueue) {
  const auto graph = make_graph(65, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 3});
  std::vector<MappingService::JobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(service.submit(make_job(graph, platform, "heft")));
  }
  service.wait_all();
  for (auto& h : handles) {
    EXPECT_TRUE(h.done());
    EXPECT_EQ(h.status(), JobStatus::kDone);
  }
}

TEST(MappingService, JobIdsFollowSubmissionOrder) {
  const auto graph = make_graph(66, 10);
  const auto platform = make_platform();
  MappingService service({.workers = 2});
  auto a = service.submit(make_job(graph, platform, "cpu"));
  auto b = service.submit(make_job(graph, platform, "cpu"));
  EXPECT_EQ(a.id() + 1, b.id());
  service.wait_all();
}

TEST(MappingService, RequestBoundsApplyPerJob) {
  const auto graph = make_graph(67);
  const auto platform = make_platform();
  MappingService service({.workers = 2});
  MapRequest budget;
  budget.max_iterations = 50;
  auto handle = service.submit(
      make_job(graph, platform, "hillclimb:iters=5000,seed=2"), budget);
  const MapJobResult& r = handle.wait();
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(r.report.iterations, 50u);
}

TEST(MappingService, BakedSpecBoundsApplyWithoutExplicitRequest) {
  const auto graph = make_graph(68);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  // No submit-time request: the bounds baked into the spec must bind.
  auto handle = service.submit(
      make_job(graph, platform, "hillclimb:iters=5000,seed=2,max_iters=50"));
  const MapJobResult& r = handle.wait();
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(r.report.iterations, 50u);

  // ... and tighten, not shadow, an explicit submit-time request.
  MapRequest loose;
  loose.max_iterations = 10000;
  auto tightened = service.submit(
      make_job(graph, platform, "hillclimb:iters=5000,seed=2,max_iters=50"),
      loose);
  EXPECT_EQ(tightened.wait().report.iterations, 50u);
}

TEST(MappingService, SharedReportingContextMatchesPerJobReporting) {
  const auto graph = make_graph(69);
  const auto platform = make_platform();
  const auto shared =
      std::make_shared<const ReportingContext>(graph, platform, 16);
  MappingService service({.workers = 2});

  MapJob with_context = make_job(graph, platform, "heft");
  with_context.reporting = shared;
  MapJob per_job = make_job(graph, platform, "heft");
  per_job.reporting_orders = 16;

  auto a = service.submit(std::move(with_context));
  auto b = service.submit(std::move(per_job));
  const MapJobResult& ra = a.wait();
  const MapJobResult& rb = b.wait();
  ASSERT_TRUE(ra.error.empty()) << ra.error;
  ASSERT_TRUE(rb.error.empty()) << rb.error;
  EXPECT_EQ(ra.reported_makespan, rb.reported_makespan);
  EXPECT_EQ(ra.baseline_makespan, rb.baseline_makespan);
}

TEST(MappingService, CancelIsPerJobEvenWithASharedRequest) {
  const auto graph = make_graph(70, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 2});
  MapRequest shared;  // one request object for the whole batch
  auto a = service.submit(make_job(graph, platform, "heft"), shared);
  auto b = service.submit(make_job(graph, platform, "heft"), shared);
  auto c = service.submit(make_job(graph, platform, "heft"), shared);
  b.cancel();
  const MapJobResult& ra = a.wait();
  const MapJobResult& rc = c.wait();
  EXPECT_TRUE(ra.error.empty()) << ra.error;
  EXPECT_TRUE(rc.error.empty()) << rc.error;
  // Cancelling b never leaks into its siblings...
  EXPECT_EQ(ra.report.termination, TerminationReason::kConverged);
  EXPECT_EQ(rc.report.termination, TerminationReason::kConverged);
  // ...while the caller's own token still cancels the whole batch.
  shared.cancel.request_cancel();
  auto d = service.submit(make_job(graph, platform, "heft"), shared);
  EXPECT_EQ(d.wait().report.termination, TerminationReason::kCancelled);
}

TEST(MappingService, BoundedQueueRejectsWhenFull) {
  const auto graph = make_graph(71, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 1, .max_queued = 1});
  MapRequest slow;
  slow.deadline_ms = 60000.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  while (running.status() == JobStatus::kQueued) std::this_thread::yield();

  auto queued = service.submit(make_job(graph, platform, "heft"));
  EXPECT_THROW(service.submit(make_job(graph, platform, "heft")), Error);
  EXPECT_FALSE(
      service.try_submit(make_job(graph, platform, "heft")).has_value());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.running, 1u);

  running.cancel();
  service.wait_all();
  EXPECT_TRUE(queued.done());
}

TEST(MappingService, BlockPolicyWaitsForASlot) {
  const auto graph = make_graph(72, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 1,
                          .max_queued = 1,
                          .when_full = QueueFullPolicy::kBlock});
  MapRequest slow;
  slow.deadline_ms = 60000.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  while (running.status() == JobStatus::kQueued) std::this_thread::yield();
  auto queued = service.submit(make_job(graph, platform, "heft"));

  // The queue is full: this submit must block until the worker frees a
  // slot (triggered by cancelling the running job).
  MappingService::JobHandle blocked;
  std::thread submitter([&] {
    blocked = service.submit(make_job(graph, platform, "heft"));
  });
  running.cancel();
  submitter.join();
  service.wait_all();
  EXPECT_EQ(queued.status(), JobStatus::kDone);
  EXPECT_EQ(blocked.status(), JobStatus::kDone);
  EXPECT_EQ(service.stats().rejected, 0u);
}

TEST(MappingService, WorkersServeHigherPrioritiesFirst) {
  const auto graph = make_graph(73, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  std::mutex order_mutex;
  std::vector<std::uint64_t> order;
  const auto record = [&](std::uint64_t id, JobStatus,
                          const MapJobResult&) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };

  MapRequest slow;
  slow.deadline_ms = 60000.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  while (running.status() == JobStatus::kQueued) std::this_thread::yield();

  // Queued while the worker is busy, in submission order low, high,
  // normal, high — must execute high, high (FIFO within the class),
  // normal, low.
  std::vector<MappingService::JobHandle> handles;
  for (const int priority : {0, 2, 1, 2}) {
    MapJob job = make_job(graph, platform, "heft");
    job.priority = priority;
    job.on_terminal = record;
    handles.push_back(service.submit(std::move(job)));
  }
  running.cancel();
  service.wait_all();

  std::lock_guard<std::mutex> lock(order_mutex);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], handles[1].id());  // high, submitted first
  EXPECT_EQ(order[1], handles[3].id());  // high, submitted second
  EXPECT_EQ(order[2], handles[2].id());  // normal
  EXPECT_EQ(order[3], handles[0].id());  // low
}

TEST(MappingService, OnTerminalFiresExactlyOnce) {
  const auto graph = make_graph(74, 15);
  const auto platform = make_platform();
  std::atomic<int> completed_fires{0};
  std::atomic<int> cancelled_fires{0};
  {
    MappingService service({.workers = 1});
    MapRequest slow;
    slow.deadline_ms = 60000.0;
    auto running = service.submit(
        make_job(graph, platform, "anneal:iters=500000000"), slow);
    while (running.status() == JobStatus::kQueued) {
      std::this_thread::yield();
    }

    MapJob completing = make_job(graph, platform, "heft");
    completing.on_terminal = [&](std::uint64_t, JobStatus status,
                                 const MapJobResult&) {
      EXPECT_EQ(status, JobStatus::kDone);
      ++completed_fires;
    };
    auto done_handle = service.submit(std::move(completing));

    MapJob doomed = make_job(graph, platform, "heft");
    doomed.on_terminal = [&](std::uint64_t, JobStatus status,
                             const MapJobResult& result) {
      EXPECT_EQ(status, JobStatus::kCancelled);
      EXPECT_FALSE(result.error.empty());
      ++cancelled_fires;
    };
    auto doomed_handle = service.submit(std::move(doomed));
    doomed_handle.cancel();  // fires from this thread, queued-cancel
    doomed_handle.cancel();  // idempotent: must not fire again

    running.cancel();
    service.wait_all();
    // The worker later discards the cancelled job: no second fire.
  }
  EXPECT_EQ(completed_fires.load(), 1);
  EXPECT_EQ(cancelled_fires.load(), 1);
}

TEST(MappingService, WaitForTimesOutAndCompletes) {
  const auto graph = make_graph(75, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 1});
  EXPECT_TRUE(MappingService::JobHandle().wait_for(1.0));  // empty handle

  MapRequest slow;
  slow.deadline_ms = 60000.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  EXPECT_FALSE(running.wait_for(20.0));
  running.cancel();
  EXPECT_TRUE(running.wait_for(30000.0));
  EXPECT_TRUE(running.done());
}

TEST(MappingService, StatsAccountTheWholeLifecycle) {
  const auto graph = make_graph(76, 15);
  const auto platform = make_platform();
  MappingService service({.workers = 2});
  auto ok = service.submit(make_job(graph, platform, "heft"));
  auto bad = service.submit(make_job(graph, platform, "hft"));
  service.wait_all();
  ok.wait();
  bad.wait();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.done, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST(MappingService, StatsSnapshotsAreConsistentUnderLoad) {
  // Regression: lifecycle transitions used to mutate their two counters
  // in separate critical sections, so a concurrent stats() reader could
  // observe a job in neither column (queued already decremented, running
  // not yet incremented) and the invariant below would fail.
  const auto graph = make_graph(77, 10);
  const auto platform = make_platform();
  MappingService service({.workers = 4});

  std::atomic<bool> done{false};
  std::atomic<std::size_t> violations{0};
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ServiceStats s = service.stats();
      if (s.submitted !=
          s.queued + s.running + s.done + s.failed + s.cancelled) {
        ++violations;
      }
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      std::vector<MappingService::JobHandle> handles;
      for (int i = 0; i < 40; ++i) {
        handles.push_back(service.submit(make_job(graph, platform, "heft")));
      }
      for (const auto& h : handles) h.wait();
    });
  }
  for (auto& thread : submitters) thread.join();
  service.wait_all();
  done.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(violations.load(), 0u);
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, 120u);
  EXPECT_EQ(s.done, 120u);
}

TEST(MappingService, StatusLabels) {
  EXPECT_STREQ(to_string(JobStatus::kQueued), "queued");
  EXPECT_STREQ(to_string(JobStatus::kRunning), "running");
  EXPECT_STREQ(to_string(JobStatus::kDone), "done");
  EXPECT_STREQ(to_string(JobStatus::kFailed), "failed");
  EXPECT_STREQ(to_string(JobStatus::kCancelled), "cancelled");
}

}  // namespace
}  // namespace spmap
