#include "serve/mapping_service.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "mappers/registry.hpp"
#include "model/cost_model.hpp"
#include "sched/evaluator.hpp"
#include "sched/problem_hash.hpp"
#include "serve/result_cache.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace spmap {

ReportingContext::ReportingContext(std::shared_ptr<const TaskGraph> graph,
                                   std::shared_ptr<const Platform> platform,
                                   std::size_t reporting_orders)
    : graph_(std::move(graph)),
      platform_(std::move(platform)),
      reporting_orders_(reporting_orders) {}

ReportingContext::Built::Built(const TaskGraph& graph,
                               const Platform& platform,
                               std::size_t reporting_orders)
    : cost(graph.dag, graph.attrs, platform),
      evaluator(cost, {.random_orders = reporting_orders}),
      baseline(evaluator.default_mapping_makespan()) {}

const ReportingContext::Built& ReportingContext::built() const {
  std::call_once(built_once_, [this] {
    built_.emplace(*graph_, *platform_, reporting_orders_);
  });
  return *built_;
}

double ReportingContext::evaluate(const Mapping& mapping) const {
  // Thread-safe path: a per-call context instead of the evaluator's
  // shared internal scratch (jobs of one context run concurrently).
  EvalContext ctx;
  return built().evaluator.evaluate(mapping, ctx);
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Everything submit precomputed about a cacheable job: the memo key,
/// the warm-index key, and the structural translation data needed to
/// store/read canonical-order warm mappings. Hashing happens outside
/// every service lock (it is O(V log V + E log E) per submit).
struct MappingService::CachePlan {
  Digest exact_key;    ///< full computation identity (memo key)
  Digest warm_key;     ///< problem identity (warm-index key)
  Digest exact_graph;  ///< labeled graph hash (ambiguity fallback)
  std::vector<std::uint32_t> canonical_rank;
  bool ambiguous = false;
  /// A warm seed was injected into this job's request: its result must
  /// not enter the exact memo (the seed is not part of the key).
  bool warm_injected = false;
};

/// Shared between the service, its workers and every handle copy. The
/// per-job mutex/cv keeps handle operations independent of the service's
/// queue lock (a wait() never blocks submissions).
struct MappingService::JobState {
  // Immutable after submit (id/job/request/rng/plan set once, then only
  // read): no guard needed. `request.cancel` is internally atomic.
  std::uint64_t id = 0;
  MapJob job;
  MapRequest request;
  Rng construction_rng{0};
  std::optional<CachePlan> cache_plan;
  CacheOutcome cache_outcome = CacheOutcome::kNone;

  mutable Mutex mutex;
  CondVar terminal;
  JobStatus status SPMAP_GUARDED_BY(mutex) = JobStatus::kQueued;
  MapJobResult result SPMAP_GUARDED_BY(mutex);
  /// Guards the exactly-once `MapJob::on_terminal` invocation (the worker
  /// path and the queued-cancel path race for it).
  bool terminal_notified SPMAP_GUARDED_BY(mutex) = false;

  bool is_terminal_locked() const SPMAP_REQUIRES(mutex) {
    return status == JobStatus::kDone || status == JobStatus::kFailed ||
           status == JobStatus::kCancelled;
  }

  /// Claims the one on_terminal invocation.
  bool claim_terminal_notification_locked() SPMAP_REQUIRES(mutex) {
    if (terminal_notified) return false;
    terminal_notified = true;
    return job.on_terminal != nullptr;
  }

  /// The result of a job that already turned terminal. Terminal status is
  /// a one-way latch and no writer touches `result` past it (the
  /// invariant every terminal-notification caller relies on), so handing
  /// out the reference for lock-free reads is sound.
  const MapJobResult& terminal_result_locked() const SPMAP_REQUIRES(mutex) {
    return result;
  }
};

MappingService::MappingService(Options options) : options_(options) {
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  // Touch the registry before spawning so its one-time init never races.
  MapperRegistry::instance();
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MappingService::~MappingService() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

MappingService::JobHandle MappingService::submit(MapJob job,
                                                 MapRequest request) {
  const bool may_block = options_.when_full == QueueFullPolicy::kBlock;
  auto handle =
      submit_locked(std::move(job), std::move(request), may_block,
                    /*may_reject=*/!may_block);
  if (!handle.has_value()) {
    throw Error("MappingService: queue full (max_queued=" +
                std::to_string(options_.max_queued) + ")");
  }
  return *std::move(handle);
}

std::optional<MappingService::JobHandle> MappingService::try_submit(
    MapJob job, MapRequest request) {
  return submit_locked(std::move(job), std::move(request),
                       /*may_block=*/false, /*may_reject=*/true);
}

std::optional<MappingService::JobHandle> MappingService::submit_locked(
    MapJob job, MapRequest request, bool may_block, bool may_reject) {
  require(!job.mapper_spec.empty(), "MappingService: empty mapper spec");
  require(job.graph != nullptr, "MappingService: job without a graph");
  require(job.platform != nullptr, "MappingService: job without a platform");

  // ---- cache consult (outside every service lock: hashing is O(V+E)) ----
  ResultCache* cache = options_.cache.get();
  std::optional<CachePlan> plan;
  CacheOutcome outcome = CacheOutcome::kNone;
  if (cache != nullptr && job.construction_rng.has_value()) {
    // Cacheable only if deterministic: canonical spec resolvable (a bad
    // spec stays uncacheable and fails in execute() with its usual
    // diagnostic) and no wall-clock deadline anywhere — request-level or
    // baked into the spec (nested init= sub-specs included, hence the
    // substring check on the canonical form).
    std::optional<std::string> canonical;
    try {
      canonical = MapperRegistry::instance().canonical_spec(job.mapper_spec);
    } catch (const std::exception&) {
    }
    if (canonical.has_value() && request.deadline_ms <= 0.0 &&
        canonical->find("deadline_ms=") == std::string::npos) {
      plan.emplace();
      const Digest graph_exact = task_graph_hash(*job.graph);
      GraphStructure structure = structural_task_graph_hash(*job.graph);
      const Digest platform = platform_hash(*job.platform);
      const bool has_reporting_pass =
          job.reporting != nullptr || job.reporting_orders.has_value();
      const std::size_t reporting_orders =
          job.reporting != nullptr
              ? job.reporting->random_orders()
              : job.reporting_orders.value_or(0);
      ContentHasher key("spmap-memo-key/1");
      key.digest(graph_exact)
          .digest(structure.digest)
          .digest(platform)
          .str(*canonical)
          .u64(request.max_evaluations)
          .u64(request.max_iterations)
          .boolean(request.seed.has_value())
          .u64(request.seed.value_or(0))
          .u64(job.inner_orders)
          .boolean(has_reporting_pass)
          .u64(reporting_orders)
          .u64(job.construction_rng->fingerprint());
      plan->exact_key = key.digest();
      ContentHasher warm("spmap-warm-key/1");
      warm.digest(structure.digest).digest(platform).u64(job.inner_orders);
      plan->warm_key = warm.digest();
      plan->exact_graph = graph_exact;
      plan->canonical_rank = std::move(structure.canonical_rank);
      plan->ambiguous = structure.ambiguous;
    }
  }

  if (plan.has_value()) {
    if (std::optional<MapJobResult> hit = cache->lookup(plan->exact_key)) {
      // O(1) fast path: terminal before submit returns, no queue slot
      // consumed (hits are admitted even when the queue is full), no
      // worker occupied, on_start never fired. Wall-clock fields carry
      // the original run's timings (excluded from determinism anyway).
      auto state = std::make_shared<JobState>();
      state->job = std::move(job);
      hit->report.cache = CacheOutcome::kHit;
      state->result = *std::move(hit);
      state->status = JobStatus::kDone;
      state->cache_outcome = CacheOutcome::kHit;
      {
        MutexLock lock(mutex_);
        state->id = next_id_++;
        ++counters_.submitted;
        ++counters_.done;
        ++counters_.cache_hits;
      }
      bool fire = false;
      const MapJobResult* published = nullptr;
      {
        MutexLock job_lock(state->mutex);
        fire = state->claim_terminal_notification_locked();
        published = &state->terminal_result_locked();
      }
      if (fire) {
        state->job.on_terminal(state->id, JobStatus::kDone, *published);
      }
      return JobHandle(state);
    }
    outcome = CacheOutcome::kMiss;
    if (job.allow_warm_start) {
      if (std::optional<ResultCache::WarmEntry> warm =
              cache->lookup_warm(plan->warm_key)) {
        // Translate the canonical-order incumbent into this graph's
        // labeling. Ambiguous structures (symmetric twins) only match
        // their exact labeling: the id tie-break makes cross-labeling
        // ranks unsound there (see problem_hash.hpp).
        const std::size_t n = plan->canonical_rank.size();
        bool usable = warm->canonical_mapping.size() == n;
        if (usable && (warm->ambiguous || plan->ambiguous)) {
          usable = warm->exact_graph == plan->exact_graph;
        }
        if (usable) {
          auto seed = std::make_shared<Mapping>();
          seed->device.resize(n);
          for (std::size_t v = 0; v < n; ++v) {
            seed->device[v] = warm->canonical_mapping[plan->canonical_rank[v]];
          }
          request.warm_start = std::move(seed);
          plan->warm_injected = true;
          outcome = CacheOutcome::kWarm;
        }
      }
    }
  }

  auto state = std::make_shared<JobState>();
  state->job = std::move(job);
  state->request = std::move(request);
  state->cache_plan = std::move(plan);
  state->cache_outcome = outcome;
  // Per-job cancellation scope: JobHandle::cancel fires only this job's
  // token; the caller's original token (the child's parent) still cancels
  // every job submitted with it.
  state->request.cancel = state->request.cancel.child();
  {
    MutexLock lock(mutex_);
    if (options_.max_queued > 0 && queued_count_ >= options_.max_queued) {
      if (may_block) {
        while (queued_count_ >= options_.max_queued) queue_space_.wait(lock);
      } else {
        ++counters_.rejected;
        (void)may_reject;
        return std::nullopt;
      }
    }
    state->id = next_id_++;
    // The per-job rng stream depends only on the submission index, never
    // on worker scheduling — the determinism contract of the header.
    if (state->job.construction_rng.has_value()) {
      state->construction_rng = *state->job.construction_rng;
    } else {
      std::uint64_t stream = options_.seed + 0x9e3779b97f4a7c15ULL * (state->id + 1);
      state->construction_rng = Rng(splitmix64(stream));
    }
    ++unfinished_;
    ++counters_.submitted;
    if (outcome != CacheOutcome::kNone) ++counters_.cache_misses;
    if (outcome == CacheOutcome::kWarm) ++counters_.cache_warm;
    ++queued_count_;
    queues_[state->job.priority].push_back(state);
  }
  work_ready_.notify_one();
  return JobHandle(state);
}

void MappingService::wait_all() {
  MutexLock lock(mutex_);
  while (unfinished_ != 0) job_done_.wait(lock);
}

ServiceStats MappingService::stats() const {
  MutexLock lock(mutex_);
  ServiceStats snapshot;
  snapshot.submitted = counters_.submitted.load(std::memory_order_relaxed);
  snapshot.rejected = counters_.rejected.load(std::memory_order_relaxed);
  snapshot.queued = queued_count_;
  snapshot.running = counters_.running.load(std::memory_order_relaxed);
  snapshot.done = counters_.done.load(std::memory_order_relaxed);
  snapshot.failed = counters_.failed.load(std::memory_order_relaxed);
  snapshot.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  snapshot.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  snapshot.cache_misses =
      counters_.cache_misses.load(std::memory_order_relaxed);
  snapshot.cache_warm = counters_.cache_warm.load(std::memory_order_relaxed);
  return snapshot;
}

void MappingService::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> state;
    bool run = false;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queued_count_ == 0) work_ready_.wait(lock);
      if (queued_count_ == 0) return;  // stopping and drained
      // Highest waiting priority first (queues_ is ordered descending),
      // FIFO within one priority.
      auto it = queues_.begin();
      state = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) queues_.erase(it);
      // The queued -> running (or queued -> cancelled, for a job the
      // cancel path already made terminal) transition is accounted inside
      // this one critical section, together with the queue pop: a stats()
      // snapshot must never see a job in neither column. The nested
      // status lock is safe — no path acquires mutex_ while holding a job
      // mutex.
      {
        MutexLock job_lock(state->mutex);
        if (state->status == JobStatus::kQueued) {
          state->status = JobStatus::kRunning;
          run = true;
        }
      }
      --queued_count_;
      if (run) {
        ++counters_.running;
      } else {
        // Cancelled while waiting: the cancel path already fired
        // on_terminal; just account for it.
        ++counters_.cancelled;
      }
    }
    queue_space_.notify_one();

    if (run) {
      if (state->job.on_start) state->job.on_start(state->id);
      const JobStatus final_status = execute(*state);
      MutexLock lock(mutex_);
      --counters_.running;
      if (final_status == JobStatus::kFailed) {
        ++counters_.failed;
      } else {
        ++counters_.done;
      }
    }

    bool drained = false;
    {
      MutexLock lock(mutex_);
      drained = --unfinished_ == 0;
    }
    if (drained) job_done_.notify_all();
    state->terminal.notify_all();
  }
}

JobStatus MappingService::execute(JobState& state) {
  MapJobResult result;
  JobStatus final_status = JobStatus::kDone;
  try {
    const MapJob& job = state.job;
    // Reuse the shared context's cost model when present; the tables are
    // identical, so only jobs without one pay the construction.
    std::optional<CostModel> owned_cost;
    if (job.reporting == nullptr) {
      owned_cost.emplace(job.graph->dag, job.graph->attrs, *job.platform);
    }
    const CostModel& cost =
        job.reporting != nullptr ? job.reporting->cost() : *owned_cost;
    const Evaluator inner(cost, {.random_orders = job.inner_orders});

    WallTimer timer;
    Rng rng = state.construction_rng;
    auto mapper =
        MapperRegistry::instance().create(job.mapper_spec, job.graph->dag, rng);
    // Bounds baked into the spec (deadline_ms= etc.) tighten the
    // submit-time request instead of being shadowed by it.
    result.report = mapper->map(
        inner, merge_run_bounds(mapper->default_request(), state.request));
    result.wall_seconds = timer.seconds();

    if (job.reporting != nullptr) {
      result.baseline_makespan = job.reporting->baseline();
      result.reported_makespan = job.reporting->evaluate(result.report.mapping);
    } else if (job.reporting_orders.has_value()) {
      const Evaluator reporting(cost,
                                {.random_orders = *job.reporting_orders});
      result.baseline_makespan = reporting.default_mapping_makespan();
      result.reported_makespan = reporting.evaluate(result.report.mapping);
    } else {
      result.reported_makespan = result.report.predicted_makespan;
    }
    result.report.cache = state.cache_outcome;
  } catch (const std::exception& ex) {
    result.error = ex.what();
    final_status = JobStatus::kFailed;
  }

  // Feed the cache (outside every lock; shards synchronize internally).
  // Only deterministic completions enter: kConverged/kBudgetExhausted are
  // pure functions of the key, while deadline- or cancel-truncated runs
  // depend on wall-clock racing and must never be replayed as answers.
  if (state.cache_plan.has_value() && final_status == JobStatus::kDone &&
      (result.report.termination == TerminationReason::kConverged ||
       result.report.termination == TerminationReason::kBudgetExhausted)) {
    ResultCache& cache = *options_.cache;
    const CachePlan& plan = *state.cache_plan;
    // Warm-started runs stay out of the exact memo: the injected seed
    // changed the computation but is not part of the key.
    if (!plan.warm_injected) cache.insert(plan.exact_key, result);
    if (result.report.mapping.size() == plan.canonical_rank.size()) {
      ResultCache::WarmEntry warm;
      warm.exact_graph = plan.exact_graph;
      warm.ambiguous = plan.ambiguous;
      warm.predicted_makespan = result.report.predicted_makespan;
      warm.canonical_mapping.resize(plan.canonical_rank.size());
      for (std::size_t v = 0; v < plan.canonical_rank.size(); ++v) {
        warm.canonical_mapping[plan.canonical_rank[v]] =
            result.report.mapping.device[v];
      }
      cache.offer_warm(plan.warm_key, std::move(warm));
    }
  }

  bool fire = false;
  const MapJobResult* published = nullptr;
  {
    MutexLock lock(state.mutex);
    state.result = std::move(result);
    state.status = final_status;
    fire = state.claim_terminal_notification_locked();
    published = &state.terminal_result_locked();
  }
  // Outside the job lock: the callback may touch the handle or service.
  // No writer mutates result/status after a job turns terminal (the
  // terminal_result_locked contract).
  if (fire) state.job.on_terminal(state.id, final_status, *published);
  return final_status;
}

// ---- JobHandle ----

std::uint64_t MappingService::JobHandle::id() const {
  return state_ == nullptr ? 0 : state_->id;
}

JobStatus MappingService::JobHandle::status() const {
  if (state_ == nullptr) return JobStatus::kFailed;
  MutexLock lock(state_->mutex);
  return state_->status;
}

bool MappingService::JobHandle::done() const {
  if (state_ == nullptr) return true;
  MutexLock lock(state_->mutex);
  return state_->is_terminal_locked();
}

void MappingService::JobHandle::cancel() const {
  if (state_ == nullptr) return;
  bool became_terminal = false;
  bool fire = false;
  const MapJobResult* published = nullptr;
  {
    MutexLock lock(state_->mutex);
    if (state_->status == JobStatus::kQueued) {
      // The worker that eventually pops this state sees a non-queued
      // status and skips execution.
      state_->status = JobStatus::kCancelled;
      state_->result.error = "cancelled before execution";
      became_terminal = true;
      fire = state_->claim_terminal_notification_locked();
      published = &state_->terminal_result_locked();
    }
  }
  // Outside the job lock: the running mapper polls this token.
  state_->request.cancel.request_cancel();
  if (became_terminal) state_->terminal.notify_all();
  if (fire) {
    state_->job.on_terminal(state_->id, JobStatus::kCancelled, *published);
  }
}

const MapJobResult& MappingService::JobHandle::wait() const& {
  require(state_ != nullptr, "JobHandle::wait on an empty handle");
  MutexLock lock(state_->mutex);
  while (!state_->is_terminal_locked()) state_->terminal.wait(lock);
  return state_->terminal_result_locked();
}

bool MappingService::JobHandle::wait_for(double timeout_ms) const {
  if (state_ == nullptr) return true;
  const auto deadline = deadline_after_ms(timeout_ms);
  MutexLock lock(state_->mutex);
  while (!state_->is_terminal_locked()) {
    if (state_->terminal.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      return state_->is_terminal_locked();
    }
  }
  return true;
}

}  // namespace spmap
