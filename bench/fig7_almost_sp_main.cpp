/// Fig. 7 — almost series-parallel graphs: 100-task random SP graphs with
/// 0..200 extra conflicting edges.
///
/// Paper shape to reproduce: quality of all algorithms degrades slightly
/// with added edges; the SP decomposition converges towards the single-node
/// decomposition (its trees fragment towards single edges); NSGA-II ends up
/// close to the decomposition heuristics; the SP mapper's execution time
/// grows with the number of conflicting edges (about +30 % over SingleNode
/// at 200 added edges) while SingleNode is unaffected.
///
/// Flags: --edges=0,20,... --tasks N --graphs N --seed S --generations N

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"edges", "tasks", "graphs", "seed", "generations"});
  std::vector<std::int64_t> default_edges;
  for (std::int64_t e = 0; e <= 200; e += 20) default_edges.push_back(e);
  const auto edge_counts = flags.get_int_list("edges", default_edges);
  const auto tasks = static_cast<std::size_t>(flags.get_int("tasks", 100));
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  const auto generations =
      static_cast<std::size_t>(flags.get_int("generations", 200));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{heft_spec(), peft_spec(),
                                      nsga2_spec(generations),
                                      single_node_spec(true),
                                      series_parallel_spec(true)};

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto extra : edge_counts) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      const Dag base = generate_sp_dag(tasks, rng);
      c.dag = add_random_edges(base, static_cast<std::size_t>(extra), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::fprintf(stderr, "[fig7] +%lld edges (%zu graphs)...\n",
                 static_cast<long long>(extra), graphs);
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(extra));
  }

  print_series("fig7", "added_edges", xs, rows,
               {"HEFT", "PEFT", "NSGAII", "SNFirstFit", "SPFirstFit"});
  return 0;
}
