#include "mappers/lookahead_heft.hpp"

#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "mappers/builtin_registrations.hpp"
#include "mappers/heft.hpp"
#include "mappers/registry.hpp"
#include "sched/timeline.hpp"
#include "util/thread_pool.hpp"

namespace spmap {

namespace {

/// Scratch scheduler state that can be copied cheaply for tentative
/// placements.
struct SchedState {
  std::vector<DeviceTimeline> timelines;  // per (device, slot)
  std::vector<double> finish;
  Mapping mapping;
  std::vector<double> fpga_area_used;
};

struct Placement {
  DeviceId device;
  std::size_t slot = 0;
  double start = 0.0;
  double eft = kInfeasible;
};

/// Best insertion-based placement of `v` by plain HEFT's EFT rule.
Placement best_placement(const CostModel& cost,
                         const std::vector<std::size_t>& slot_offset,
                         const SchedState& state, NodeId v) {
  const Platform& platform = cost.platform();
  Placement best;
  best.device = platform.default_device();
  for (std::size_t d = 0; d < platform.device_count(); ++d) {
    const DeviceId dev(d);
    const Device& device = platform.device(dev);
    if (device.is_fpga() && state.fpga_area_used[d] + cost.area(v) >
                                device.area_budget) {
      continue;
    }
    double est = 0.0;
    for (const EdgeId e : cost.dag().in_edges(v)) {
      const NodeId u = cost.dag().src(e);
      est = std::max(est, state.finish[u.v] +
                              cost.transfer_time(e, state.mapping[u], dev));
    }
    const double exec = cost.exec_time(v, dev);
    for (std::size_t s = slot_offset[d]; s < slot_offset[d + 1]; ++s) {
      const double start = state.timelines[s].earliest_start(est, exec);
      if (start + exec < best.eft) {
        best.eft = start + exec;
        best.device = dev;
        best.slot = s;
        best.start = start;
      }
    }
  }
  return best;
}

void commit(const CostModel& cost, SchedState& state, NodeId v,
            const Placement& p) {
  state.mapping[v] = p.device;
  state.finish[v.v] = p.eft;
  state.timelines[p.slot].reserve(p.start, p.eft - p.start);
  if (cost.platform().device(p.device).is_fpga()) {
    state.fpga_area_used[p.device.v] += cost.area(v);
  }
}

}  // namespace

MapReport LookaheadHeftMapper::map(const Evaluator& eval,
                                   const MapRequest& request) {
  RunControl control(request);
  const CostModel& cost = eval.cost();
  const Dag& dag = cost.dag();
  const Platform& platform = cost.platform();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  const auto rank = heft_upward_ranks(cost);
  const auto topo = topological_order(dag);
  std::vector<std::size_t> topo_pos(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[topo[i].v] = i;
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = NodeId(i);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (rank[a.v] != rank[b.v]) return rank[a.v] > rank[b.v];
    return topo_pos[a.v] < topo_pos[b.v];
  });

  std::vector<std::size_t> slot_offset(m + 1, 0);
  for (std::size_t d = 0; d < m; ++d) {
    slot_offset[d + 1] =
        slot_offset[d] +
        std::max<std::size_t>(1, platform.device(DeviceId(d)).slots);
  }

  SchedState state;
  state.timelines.resize(slot_offset.back());
  state.finish.assign(n, 0.0);
  state.mapping = Mapping(n, platform.default_device());
  state.fpga_area_used.assign(m, 0.0);

  const PoolLease lease(request, params_.threads);
  ThreadPool* pool = lease.get();

  // Scores one candidate device for `v`: place v on its best slot, then
  // tentatively schedule all children with plain HEFT on a private state
  // copy. Reads the shared `state` only — safe to run per-device in
  // parallel.
  std::vector<Placement> placement(m);
  std::vector<double> score(m);
  auto score_device = [&](NodeId v, std::size_t d) {
    placement[d] = Placement{};
    score[d] = kInfeasible;
    const DeviceId dev(d);
    const Device& device = platform.device(dev);
    if (device.is_fpga() &&
        state.fpga_area_used[d] + cost.area(v) > device.area_budget) {
      return;
    }
    // Placement of v on dev (its own best slot).
    double est = 0.0;
    for (const EdgeId e : dag.in_edges(v)) {
      const NodeId u = dag.src(e);
      est = std::max(est, state.finish[u.v] +
                              cost.transfer_time(e, state.mapping[u], dev));
    }
    const double exec = cost.exec_time(v, dev);
    Placement p;
    p.device = dev;
    for (std::size_t s = slot_offset[d]; s < slot_offset[d + 1]; ++s) {
      const double start = state.timelines[s].earliest_start(est, exec);
      if (start + exec < p.eft) {
        p.eft = start + exec;
        p.slot = s;
        p.start = start;
      }
    }
    if (p.eft >= kInfeasible) return;

    // Tentative: copy the state, commit v, schedule children greedily.
    SchedState tentative = state;
    commit(cost, tentative, v, p);
    double worst = p.eft;
    for (const EdgeId e : dag.out_edges(v)) {
      const NodeId child = dag.dst(e);
      const Placement cp = best_placement(cost, slot_offset, tentative, child);
      if (cp.eft >= kInfeasible) {
        worst = kInfeasible;
        break;
      }
      commit(cost, tentative, child, cp);
      worst = std::max(worst, cp.eft);
    }
    placement[d] = p;
    score[d] = worst;
  };

  // One-shot list scheduler: one "iteration" places one task; a truncated
  // run leaves the remaining tasks on the default device (valid mapping).
  std::size_t placed = 0;
  for (const NodeId v : order) {
    if (control.should_stop(placed, 0)) break;
    // Candidate devices for v; judge each by the worst child EFT after
    // tentatively scheduling all children with plain HEFT. The frontier is
    // scored in parallel; the winner is reduced in device order, so the
    // choice matches the serial scan exactly.
    if (pool) {
      pool->parallel_for(m, [&](std::size_t begin, std::size_t end,
                                std::size_t /*worker*/) {
        for (std::size_t d = begin; d < end; ++d) score_device(v, d);
      });
    } else {
      for (std::size_t d = 0; d < m; ++d) score_device(v, d);
    }
    Placement chosen;
    double chosen_score = kInfeasible;
    for (std::size_t d = 0; d < m; ++d) {
      if (score[d] < chosen_score) {
        chosen_score = score[d];
        chosen = placement[d];
      }
    }
    SPMAP_ASSERT(chosen.eft < kInfeasible);
    commit(cost, state, v, chosen);
    ++placed;
  }

  MapReport report;
  const std::size_t before = eval.evaluation_count();
  report.predicted_makespan = eval.evaluate(state.mapping);
  report.evaluations = eval.evaluation_count() - before;
  report.mapping = std::move(state.mapping);
  report.iterations = placed;
  control.record_incumbent(report.predicted_makespan, placed);
  control.finalize(report);
  return report;
}

void detail::register_lookahead_heft_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "laheft";
  entry.display_name = "LookaheadHEFT";
  entry.description =
      "HEFT with one level of lookahead (Bittencourt et al.): device choice "
      "minimizes the worst child EFT instead of the task's own EFT";
  entry.options = {
      {"threads", "1",
       "candidate-frontier worker threads (results thread-count invariant)"},
  };
  entry.factory = [](const MapperContext& ctx) {
    LookaheadHeftParams params;
    params.threads = threads_option(ctx.options);
    return std::make_unique<LookaheadHeftMapper>(params);
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
