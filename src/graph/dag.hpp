#pragma once
/// \file dag.hpp
/// Directed acyclic task graph.
///
/// `Dag` stores the application task graph of the paper: nodes are tasks,
/// edges are data dependencies carrying a payload volume in megabytes
/// (Section IV-B uses a constant 100 MB; the workflow suite uses per-edge
/// volumes). Adjacency is kept in both directions for O(degree) traversal
/// either way. Acyclicity is not enforced per edge insert (generators need
/// intermediate freedom); call `validate()` or `is_acyclic()` after
/// construction.

#include <string>
#include <vector>

#include "graph/ids.hpp"
#include "util/error.hpp"

namespace spmap {

/// Default edge payload used throughout the paper's random-graph evaluation.
inline constexpr double kDefaultEdgeDataMb = 100.0;

class Dag {
 public:
  Dag() = default;

  /// Creates a graph with `n` unlabeled nodes and no edges.
  explicit Dag(std::size_t n) { add_nodes(n); }

  // ---- construction ----

  NodeId add_node(std::string label = {});
  void add_nodes(std::size_t count);
  /// Adds a directed edge src -> dst with a data payload in MB.
  /// Parallel edges are allowed (used transiently by generators).
  EdgeId add_edge(NodeId src, NodeId dst, double data_mb = kDefaultEdgeDataMb);

  // ---- sizes ----

  std::size_t node_count() const { return out_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  bool empty() const { return out_.empty(); }

  // ---- edge access ----

  NodeId src(EdgeId e) const { return rec(e).src; }
  NodeId dst(EdgeId e) const { return rec(e).dst; }
  double data_mb(EdgeId e) const { return rec(e).data_mb; }
  void set_data_mb(EdgeId e, double mb) { rec(e).data_mb = mb; }

  // ---- adjacency ----

  const std::vector<EdgeId>& out_edges(NodeId n) const {
    return out_[check(n).v];
  }
  const std::vector<EdgeId>& in_edges(NodeId n) const {
    return in_[check(n).v];
  }
  std::size_t out_degree(NodeId n) const { return out_edges(n).size(); }
  std::size_t in_degree(NodeId n) const { return in_edges(n).size(); }

  /// True if at least one src -> dst edge exists (O(out_degree(src))).
  bool has_edge(NodeId src, NodeId dst) const;

  // ---- labels ----

  const std::string& label(NodeId n) const { return labels_[check(n).v]; }
  void set_label(NodeId n, std::string label) {
    labels_[check(n).v] = std::move(label);
  }

  // ---- whole-graph queries ----

  /// All nodes with in-degree zero, in id order.
  std::vector<NodeId> sources() const;
  /// All nodes with out-degree zero, in id order.
  std::vector<NodeId> sinks() const;

  /// Total data volume entering node `n` (MB).
  double in_data_mb(NodeId n) const;
  /// Total data volume leaving node `n` (MB).
  double out_data_mb(NodeId n) const;

  /// Throws spmap::Error if the graph has a cycle or dangling ids.
  void validate() const;

 private:
  struct EdgeRec {
    NodeId src;
    NodeId dst;
    double data_mb;
  };

  NodeId check(NodeId n) const {
    require(n.v < out_.size(), "Dag: node id out of range");
    return n;
  }
  EdgeRec& rec(EdgeId e) {
    require(e.v < edges_.size(), "Dag: edge id out of range");
    return edges_[e.v];
  }
  const EdgeRec& rec(EdgeId e) const {
    require(e.v < edges_.size(), "Dag: edge id out of range");
    return edges_[e.v];
  }

  std::vector<EdgeRec> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::vector<std::string> labels_;
};

}  // namespace spmap
