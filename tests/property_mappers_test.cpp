/// Parameterized property suite over all heuristic mappers: invariants that
/// every mapping algorithm must satisfy on every input (validity, area
/// feasibility, reproducibility), plus the decomposition-specific
/// improvement guarantee.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/cpu_only.hpp"
#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/nsga2.hpp"
#include "mappers/peft.hpp"
#include "model/platform.hpp"

namespace spmap {
namespace {

struct MapperCase {
  std::string mapper;
  std::size_t nodes;
  std::size_t extra_edges;
  std::uint64_t seed;
};

std::unique_ptr<Mapper> build_mapper(const std::string& name, const Dag& dag,
                                     Rng& rng) {
  if (name == "cpu") return std::make_unique<CpuOnlyMapper>();
  if (name == "heft") return std::make_unique<HeftMapper>();
  if (name == "peft") return std::make_unique<PeftMapper>();
  if (name == "sn") return make_single_node_mapper(dag, false);
  if (name == "snff") return make_single_node_mapper(dag, true);
  if (name == "sp") return make_series_parallel_mapper(dag, rng, false);
  if (name == "spff") return make_series_parallel_mapper(dag, rng, true);
  if (name == "nsga") {
    Nsga2Params params;
    params.population = 20;
    params.generations = 15;
    return std::make_unique<Nsga2Mapper>(params);
  }
  throw Error("unknown mapper in test: " + name);
}

class MapperProperty : public ::testing::TestWithParam<MapperCase> {
 protected:
  MapperProperty() : rng_(GetParam().seed), platform_(reference_platform()) {
    Dag base = generate_sp_dag(GetParam().nodes, rng_);
    dag_ = add_random_edges(base, GetParam().extra_edges, rng_);
    attrs_ = random_task_attrs(dag_, rng_);
    cost_.emplace(dag_, attrs_, platform_);
    eval_.emplace(*cost_, EvalParams{});
  }

  Rng rng_;
  Platform platform_;
  Dag dag_;
  TaskAttrs attrs_;
  std::optional<CostModel> cost_;
  std::optional<Evaluator> eval_;
};

TEST_P(MapperProperty, MappingIsValidAndFeasible) {
  Rng mapper_rng(GetParam().seed + 1);
  auto mapper = build_mapper(GetParam().mapper, dag_, mapper_rng);
  const MapperResult r = mapper->map(*eval_);
  EXPECT_NO_THROW(
      r.mapping.validate(dag_.node_count(), platform_.device_count()));
  EXPECT_TRUE(cost_->area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
  EXPECT_GT(r.predicted_makespan, 0.0);
}

TEST_P(MapperProperty, ReportedMakespanMatchesMapping) {
  Rng mapper_rng(GetParam().seed + 1);
  auto mapper = build_mapper(GetParam().mapper, dag_, mapper_rng);
  const MapperResult r = mapper->map(*eval_);
  EXPECT_NEAR(r.predicted_makespan, eval_->evaluate(r.mapping), 1e-12);
}

TEST_P(MapperProperty, DeterministicForFixedSeeds) {
  Rng a(GetParam().seed + 2);
  Rng b(GetParam().seed + 2);
  auto m1 = build_mapper(GetParam().mapper, dag_, a);
  auto m2 = build_mapper(GetParam().mapper, dag_, b);
  EXPECT_EQ(m1->map(*eval_).mapping, m2->map(*eval_).mapping);
}

TEST_P(MapperProperty, DecompositionNeverWorseThanBaseline) {
  // Improvement guarantee of Section III-A (decomposition and the GA with
  // the seeded default individual); list schedulers may regress and are
  // skipped here.
  const std::string& name = GetParam().mapper;
  if (name == "heft" || name == "peft") GTEST_SKIP();
  Rng mapper_rng(GetParam().seed + 3);
  auto mapper = build_mapper(name, dag_, mapper_rng);
  const MapperResult r = mapper->map(*eval_);
  EXPECT_LE(r.predicted_makespan,
            eval_->default_mapping_makespan() + 1e-9);
}

std::vector<MapperCase> make_cases() {
  std::vector<MapperCase> cases;
  std::uint64_t seed = 100;
  for (const char* mapper :
       {"cpu", "heft", "peft", "sn", "snff", "sp", "spff", "nsga"}) {
    for (const auto& [n, e] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {6, 0}, {20, 8}, {45, 0}}) {
      cases.push_back(MapperCase{mapper, n, e, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MapperProperty, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<MapperCase>& param_info) {
      return param_info.param.mapper + "_n" + std::to_string(param_info.param.nodes) +
             "_e" + std::to_string(param_info.param.extra_edges);
    });

}  // namespace
}  // namespace spmap
