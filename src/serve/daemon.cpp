#include "serve/daemon.hpp"

#include "serve/result_cache.hpp"

#include <cerrno>
#include <csignal>
#include <cstdarg>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "model/platform_io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "workflows/workflows.hpp"

namespace spmap {

namespace {

/// Backpressure on the *write* side: a peer that stops reading while
/// subscribed to a chatty job would otherwise grow our buffer without
/// bound. Past this, the connection is dropped.
constexpr std::size_t kMaxOutbufBytes = 64u << 20;

/// Sequenced event lines kept per session for resume replay. A client
/// that missed more than this cannot resume exactly and must re-hello;
/// bounds detached-session memory.
constexpr std::size_t kMaxSessionBacklog = 4096;

/// 16 hex chars of token; uniqueness comes from the rng seeding (pid +
/// wall entropy), not from the length.
std::string make_token(Rng& rng) {
  static const char* hex = "0123456789abcdef";
  std::uint64_t bits = rng();
  std::string token(16, '0');
  for (char& ch : token) {
    ch = hex[bits & 0xf];
    bits >>= 4;
  }
  return token;
}

/// Signal-handler bridge: handlers may only touch lock-free state and
/// async-signal-safe calls, so they set a flag and poke the self-pipe.
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_drain{false};

void signal_drain_handler(int) {
  g_signal_drain.store(true, std::memory_order_relaxed);
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

WorkflowFamily family_by_name(const std::string& name) {
  for (const WorkflowFamily f : all_workflow_families()) {
    if (name == workflow_family_name(f)) return f;
  }
  throw Error("unknown workflow family: " + name);
}

std::size_t generate_count(const Json& spec, const char* key,
                           std::size_t fallback) {
  if (!spec.contains(key)) return fallback;
  const Json& v = spec.at(key);
  require(v.is_number() && v.as_double() >= 0.0,
          std::string("generate.") + key + " must be a non-negative number");
  return static_cast<std::size_t>(v.as_int());
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  // Construction is single-threaded and happens-before run() by the
  // usual object-publication rules, so the constructing thread holds the
  // IO role for the duration (covers token_rng_ and init_journal()).
  ScopedThreadRole io(io_role_);
  if (options_.cache_entries > 0) {
    ResultCacheOptions cache_options;
    cache_options.max_entries = options_.cache_entries;
    cache_options.max_bytes = options_.cache_bytes;
    cache_ = std::make_shared<ResultCache>(cache_options);
  }
  MappingServiceOptions service_options;
  service_options.workers = options_.workers;
  service_options.seed = options_.seed;
  service_options.max_queued = options_.max_queued;
  service_options.when_full = QueueFullPolicy::kReject;
  service_options.cache = cache_;
  service_ = std::make_unique<MappingService>(service_options);

  int pipe_fds[2];
  require(::pipe(pipe_fds) == 0, "Daemon: cannot create the wake pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  set_nonblocking(wake_read_);
  set_nonblocking(wake_write_);

  reference_platform_ =
      std::make_shared<const Platform>(reference_platform());

  // Token rng: wants uniqueness, not reproducibility — mix in wall
  // entropy so a restarted daemon never re-issues a pre-restart token
  // (a stale resume must fail cleanly, not adopt a stranger's session).
  std::uint64_t entropy =
      options_.seed ^ static_cast<std::uint64_t>(::getpid()) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count());
  token_rng_ = Rng(splitmix64(entropy));

  if (!options_.journal_path.empty()) init_journal();
}

Daemon::~Daemon() {
  // Join the workers FIRST (the service destructor drains them): their
  // on_terminal callbacks poke the wake pipe via push_event(), so closing
  // the pipe before the join is a write-after-close race — and worse if
  // the fd number gets recycled in between. jobs_ only holds handles, so
  // destroying the service ahead of the member teardown is safe. (Found
  // by the TSan tier; regression: ServeDaemon.DestructionWithJobsInFlight.)
  service_.reset();
  int expected = wake_write_;
  g_signal_wake_fd.compare_exchange_strong(expected, -1);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
}

void Daemon::bind() {
  listener_.emplace(options_.endpoint);
  logf("listening on %s (workers=%zu max_queued=%zu)",
       listener_->endpoint().to_string().c_str(), service_->worker_count(),
       options_.max_queued);
}

const Endpoint& Daemon::endpoint() const {
  return listener_ ? listener_->endpoint() : options_.endpoint;
}

void Daemon::request_drain(double grace_ms) {
  if (grace_ms >= 0.0) {
    requested_grace_ms_.store(grace_ms, std::memory_order_relaxed);
  }
  drain_requested_.store(true, std::memory_order_release);
  wake();
}

void Daemon::begin_drain(double grace_ms) { request_drain(grace_ms); }

bool Daemon::draining() const {
  return draining_ || drain_requested_.load(std::memory_order_acquire);
}

Json Daemon::server_info() const {
  Json info = Json::object();
  info.set("server", Json("spmap-daemon"));
  info.set("workers", Json(service_->worker_count()));
  info.set("max_queued", Json(options_.max_queued));
  info.set("resume_window_s", Json(options_.resume_window_s));
  info.set("cache_entries", Json(options_.cache_entries));
  return info;
}

Json Daemon::stats_body() const {
  const ServiceStats stats = service_->stats();
  Json body = Json::object();
  body.set("submitted", Json(stats.submitted));
  body.set("rejected", Json(stats.rejected));
  body.set("queued", Json(stats.queued));
  body.set("running", Json(stats.running));
  body.set("done", Json(stats.done));
  body.set("failed", Json(stats.failed));
  body.set("cancelled", Json(stats.cancelled));
  body.set("cache_hits", Json(stats.cache_hits));
  body.set("cache_misses", Json(stats.cache_misses));
  body.set("cache_warm", Json(stats.cache_warm));
  if (cache_ != nullptr) {
    const ResultCacheStats cache = cache_->stats();
    body.set("cache_resident_entries", Json(cache.entries));
    body.set("cache_resident_bytes", Json(cache.bytes));
    body.set("cache_inserts", Json(cache.inserts));
    body.set("cache_evictions", Json(cache.evictions));
  }
  return body;
}

std::string Daemon::register_session(std::uint64_t session) {
  SessionRecord record;
  record.token = make_token(token_rng_);
  record.conn = session;  // hello: the conn id is the session id
  const std::string token = record.token;
  sessions_[session] = std::move(record);
  return token;
}

ResumeOutcome Daemon::resume_session(std::uint64_t conn,
                                     const std::string& token,
                                     std::uint64_t last_seq) {
  ResumeOutcome outcome;
  auto it = sessions_.begin();
  for (; it != sessions_.end(); ++it) {
    if (it->second.token == token) break;
  }
  if (it == sessions_.end()) {
    outcome.message =
        "unknown or expired session token (fall back to a fresh hello)";
    return outcome;
  }
  SessionRecord& record = it->second;
  if (record.conn != 0 && record.conn != conn) {
    // The old connection is still around (half-open TCP: the peer died
    // without a FIN reaching us). The token proves the resuming client
    // is the session's owner; the newest connection wins.
    const auto old_it = conns_.find(record.conn);
    if (old_it != conns_.end()) old_it->second.socket.close();
  }
  record.conn = conn;
  outcome.ok = true;
  outcome.session = it->first;
  outcome.token = record.token;
  for (const auto& [seq, line] : record.backlog) {
    if (seq > last_seq) outcome.replay.push_back(line);
  }
  logf("session %llu resumed on conn %llu (replaying %zu event(s) after "
       "seq %llu)",
       static_cast<unsigned long long>(it->first),
       static_cast<unsigned long long>(conn), outcome.replay.size(),
       static_cast<unsigned long long>(last_seq));
  return outcome;
}

void Daemon::send_event(std::uint64_t session, const std::string& event,
                        Json body) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;  // never helloed or expired
  SessionRecord& record = it->second;
  const std::uint64_t seq = record.next_seq++;
  body.set("event_seq", Json(seq));
  const std::string line = event_line(event, std::move(body));
  record.backlog.emplace_back(seq, line);
  while (record.backlog.size() > kMaxSessionBacklog) {
    record.backlog.pop_front();
  }
  if (record.conn == 0) return;  // detached: the backlog waits for resume
  const auto conn_it = conns_.find(record.conn);
  if (conn_it == conns_.end() || conn_it->second.session.closed()) return;
  enqueue_lines(conn_it->second, {line});
}

void Daemon::expire_sessions(double now) {
  if (now - last_session_sweep_s_ < 1.0) return;
  last_session_sweep_s_ = now;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const SessionRecord& record = it->second;
    if (record.conn == 0 &&
        now - record.detached_at > options_.resume_window_s) {
      logf("session %llu expired (resume window closed)",
           static_cast<unsigned long long>(it->first));
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::wake() const {
  if (wake_write_ < 0) return;
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
}

void Daemon::push_event(Event event) {
  {
    MutexLock lock(events_mutex_);
    events_.push_back(std::move(event));
  }
  wake();
}

void Daemon::process_events() {
  std::deque<Event> batch;
  {
    MutexLock lock(events_mutex_);
    batch.swap(events_);
  }
  for (const Event& event : batch) handle_event(event);
}

void Daemon::handle_event(const Event& event) {
  const auto it = jobs_.find(event.job);
  if (it == jobs_.end()) return;  // evicted by retention
  JobEntry& entry = it->second;

  switch (event.kind) {
    case Event::Kind::kStarted: {
      if (entry.started || entry.terminal) return;
      entry.started = true;
      Json record = Json::object();
      record.set("type", Json("started"));
      record.set("job", Json(event.job));
      journal_append(record, /*sync=*/false);
      return;
    }
    case Event::Kind::kIncumbent: {
      if (journal_ != nullptr) {
        Json record = Json::object();
        record.set("type", Json("incumbent"));
        record.set("job", Json(event.job));
        record.set("makespan", Json(event.incumbent.makespan));
        record.set("iteration", Json(event.incumbent.iteration));
        record.set("seconds", Json(event.incumbent.seconds));
        journal_append(record, /*sync=*/false);
      }
      for (const std::uint64_t session : entry.subscribers) {
        Json body = Json::object();
        body.set("job", Json(event.job));
        body.set("makespan", Json(event.incumbent.makespan));
        body.set("iteration", Json(event.incumbent.iteration));
        body.set("seconds", Json(event.incumbent.seconds));
        send_event(session, "incumbent", std::move(body));
      }
      return;
    }
    case Event::Kind::kTerminal: {
      if (entry.terminal) return;  // defensive: exactly-once upstream
      failpoint("daemon.terminal");  // chaos: crash between run and ack
      entry.terminal = true;
      --outstanding_;
      const Json status = status_body(event.job, entry);
      // Commit before acknowledging: the fsynced terminal record is what
      // lets a restarted daemon answer status for this job; only then may
      // the done event (the client-visible acknowledgement) leave.
      Json record = Json::object();
      record.set("type", Json("terminal"));
      record.set("job", Json(event.job));
      record.set("status", status);
      journal_append(record, /*sync=*/true);
      logf("job %llu %s",
           static_cast<unsigned long long>(event.job),
           to_string(entry.handle.status()));
      for (const std::uint64_t session : entry.subscribers) {
        send_event(session, "done", status);
      }
      retain_completed(event.job);
      if (journal_ != nullptr &&
          journal_->appended() >
              std::max<std::size_t>(256, 4 * options_.completed_retention)) {
        compact_journal();
      }
      return;
    }
    case Event::Kind::kReplayDone: {
      send_event(event.session, "done", status_body(event.job, entry));
      return;
    }
  }
}

void Daemon::retain_completed(std::uint64_t job) {
  completed_order_.push_back(job);
  while (completed_order_.size() > options_.completed_retention) {
    jobs_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

// ---- SessionHost -----------------------------------------------------------

std::size_t Daemon::class_capacity(int priority) const {
  const std::size_t m = options_.max_queued;
  if (priority >= 2) return m;
  if (priority == 1) return std::max<std::size_t>(1, (3 * m) / 4);
  return std::max<std::size_t>(1, m / 2);
}

TaskGraph graph_from_generate_spec(const Json& spec) {
  require(spec.is_object(), "generate must be an object");
  spec.require_keys("generate", {"type", "tasks", "extra_edges", "seed",
                                 "family", "width"});
  std::string type = "sp";
  if (spec.contains("type")) {
    require(spec.at("type").is_string(), "generate.type must be a string");
    type = spec.at("type").as_string();
  }
  Rng rng(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(generate_count(spec, "seed", 1))));
  TaskGraph tg;
  if (type == "sp" || type == "almost-sp") {
    tg.dag = generate_sp_dag(generate_count(spec, "tasks", 30), rng);
    if (type == "almost-sp") {
      tg.dag = add_random_edges(tg.dag, generate_count(spec, "extra_edges",
                                                       10),
                                rng);
    }
    tg.attrs = random_task_attrs(tg.dag, rng);
  } else if (type == "workflow") {
    std::string family = "montage";
    if (spec.contains("family")) {
      require(spec.at("family").is_string(),
              "generate.family must be a string");
      family = spec.at("family").as_string();
    }
    WorkflowInstance inst = generate_workflow(
        family_by_name(family), generate_count(spec, "width", 12), rng);
    tg.dag = std::move(inst.dag);
    tg.attrs = std::move(inst.attrs);
  } else {
    throw Error("generate.type must be sp, almost-sp or workflow, got \"" +
                type + "\"");
  }
  return tg;
}

std::shared_ptr<const TaskGraph> Daemon::resolve_graph(
    const WireSubmit& request) {
  if (request.graph.has_value()) {
    return std::make_shared<const TaskGraph>(
        task_graph_from_json(request.graph->dump()));
  }
  return std::make_shared<const TaskGraph>(
      graph_from_generate_spec(*request.generate));
}

std::shared_ptr<const Platform> Daemon::resolve_platform(
    const WireSubmit& request) {
  if (!request.platform.has_value()) return reference_platform_;
  return std::make_shared<const Platform>(
      platform_from_json(*request.platform).platform);
}

SubmitOutcome Daemon::submit(std::uint64_t session,
                             const WireSubmit& request) {
  SubmitOutcome outcome;

  // Graduated per-class admission, checked against a live queue snapshot.
  // Only the IO thread submits, and workers can only *shrink* the queue
  // between this check and the try_submit below, so the check cannot
  // admit past the bound; try_submit is the belt-and-braces backstop.
  if (options_.max_queued > 0) {
    const ServiceStats stats = service_->stats();
    const std::size_t capacity = class_capacity(request.priority);
    if (stats.queued >= capacity) {
      outcome.code = WireErrorCode::kOverloaded;
      outcome.message = "queue full for class " + request.priority_class +
                        " (queued " + std::to_string(stats.queued) +
                        ", class capacity " + std::to_string(capacity) + ")";
      return outcome;
    }
  }

  MapJob job;
  try {
    // Eager validation: an unknown mapper name fails the submit now (with
    // the registry's did-you-mean diagnostic) instead of failing the job
    // asynchronously. Option typos still surface via the job's kFailed
    // path — they need a constructed Dag to validate against.
    (void)MapperRegistry::instance().at(
        MapperRegistry::split_spec(request.mapper_spec).first);
    job.graph = resolve_graph(request);
    job.platform = resolve_platform(request);
  } catch (const Error& ex) {
    outcome.code = WireErrorCode::kBadRequest;
    outcome.message = ex.what();
    return outcome;
  }

  const std::uint64_t id = next_job_id_++;
  job.mapper_spec = request.mapper_spec;
  job.inner_orders = 0;
  job.reporting_orders = request.reporting_orders;
  job.priority = request.priority;
  job.allow_warm_start = request.warm;
  if (request.construction_seed.has_value()) {
    job.construction_rng = Rng(*request.construction_seed);
  }
  // Callbacks run on worker threads — or, for a cache hit, synchronously
  // from try_submit on this IO thread: either way they only enqueue an
  // event keyed by the wire id (assigned above, before any worker can
  // fire) and wake the IO thread. The events are processed after this
  // submit returned and the JobEntry exists.
  job.on_terminal = [this, id](std::uint64_t, JobStatus,
                               const MapJobResult&) {
    Event event;
    event.kind = Event::Kind::kTerminal;
    event.job = id;
    push_event(std::move(event));
  };
  if (journal_ != nullptr) {
    job.on_start = [this, id](std::uint64_t) {
      Event event;
      event.kind = Event::Kind::kStarted;
      event.job = id;
      push_event(std::move(event));
    };
  }

  MapRequest run;
  run.deadline_ms = request.deadline_ms;
  run.max_evaluations = request.max_evaluations;
  run.max_iterations = request.max_iterations;
  run.seed = request.seed;
  run.on_incumbent = [this, id](const IncumbentRecord& record) {
    Event event;
    event.kind = Event::Kind::kIncumbent;
    event.job = id;
    event.incumbent = record;
    push_event(std::move(event));
  };

  std::optional<MappingService::JobHandle> handle =
      service_->try_submit(std::move(job), std::move(run));
  if (!handle.has_value()) {
    outcome.code = WireErrorCode::kOverloaded;
    outcome.message = "queue full (max_queued " +
                      std::to_string(options_.max_queued) + ")";
    return outcome;
  }

  JobEntry entry;
  entry.handle = *std::move(handle);
  entry.priority_class = request.priority_class;
  entry.want_mapping = request.want_mapping;
  if (request.subscribe) entry.subscribers.insert(session);

  if (journal_ != nullptr) {
    // Commit before acknowledging: the ok response only leaves after the
    // submitted record is on disk, so every acknowledged job survives a
    // crash. A failed journal write rejects the submit (and cancels the
    // already-enqueued job) — accepting unjournaled work would break the
    // restart guarantee the client was promised.
    entry.submit_json = to_json(request);
    Json record = Json::object();
    record.set("type", Json("submitted"));
    record.set("job", Json(id));
    record.set("submit", entry.submit_json);
    try {
      journal_->append(record, /*sync=*/true);
    } catch (const Error& ex) {
      entry.handle.cancel();
      logf("job %llu rejected: %s",
           static_cast<unsigned long long>(id), ex.what());
      outcome.code = WireErrorCode::kInternal;
      outcome.message = std::string("journal write failed: ") + ex.what();
      return outcome;
    }
  }

  ++outstanding_;
  jobs_.emplace(id, std::move(entry));
  logf("job %llu accepted (session %llu, class %s, mapper %s)",
       static_cast<unsigned long long>(id),
       static_cast<unsigned long long>(session),
       request.priority_class.c_str(), request.mapper_spec.c_str());

  outcome.accepted = true;
  outcome.job = id;
  return outcome;
}

Json Daemon::status_body(std::uint64_t id, const JobEntry& entry) const {
  if (entry.restored_status.has_value()) {
    // Journal-restored terminal job: answer the recorded status verbatim
    // (there is no live handle behind it).
    return *entry.restored_status;
  }
  Json body = Json::object();
  body.set("job", Json(id));
  body.set("class", Json(entry.priority_class));
  const JobStatus status = entry.handle.status();
  body.set("state", Json(to_string(status)));
  if (!entry.terminal) return body;

  const MapJobResult& result = entry.handle.wait();  // terminal: immediate
  if (status == JobStatus::kDone) {
    body.set("cache", Json(to_string(result.report.cache)));
    body.set("makespan", Json(result.report.predicted_makespan));
    body.set("reported_makespan", Json(result.reported_makespan));
    body.set("baseline_makespan", Json(result.baseline_makespan));
    body.set("termination", Json(to_string(result.report.termination)));
    body.set("iterations", Json(result.report.iterations));
    body.set("evaluations", Json(result.report.evaluations));
    body.set("incumbents", Json(result.report.trajectory.size()));
    body.set("wall_ms", Json(1e3 * result.wall_seconds));
    if (entry.want_mapping) {
      Json mapping = Json::array();
      for (std::size_t i = 0; i < result.report.mapping.size(); ++i) {
        mapping.push_back(
            Json(static_cast<std::size_t>(result.report.mapping.device[i].v)));
      }
      body.set("mapping", std::move(mapping));
    }
  } else {
    body.set("error", Json(result.error));
  }
  return body;
}

std::optional<Json> Daemon::job_status(std::uint64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return std::nullopt;
  return status_body(job, it->second);
}

bool Daemon::cancel_job(std::uint64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return false;
  // Restored terminal jobs have no live handle; cancelling a terminal
  // job is an idempotent success either way.
  if (!it->second.restored_status.has_value()) it->second.handle.cancel();
  return true;
}

bool Daemon::subscribe(std::uint64_t session, std::uint64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return false;
  it->second.subscribers.insert(session);
  if (it->second.terminal) {
    // The job already finished: replay the done event to this subscriber
    // (after the ok response — events go out in queue order).
    Event event;
    event.kind = Event::Kind::kReplayDone;
    event.job = job;
    event.session = session;
    push_event(std::move(event));
  }
  return true;
}

// ---- journal ---------------------------------------------------------------

Json Daemon::submitted_record(std::uint64_t id, const JobEntry& entry) const {
  Json record = Json::object();
  record.set("type", Json("submitted"));
  record.set("job", Json(id));
  record.set("submit", entry.submit_json);
  return record;
}

void Daemon::journal_append(const Json& record, bool sync) {
  if (journal_ == nullptr) return;
  try {
    journal_->append(record, sync);
  } catch (const Error& ex) {
    // Degrade, don't die: a failed progress/terminal append means the job
    // is re-executed after a restart (same deterministic result), never
    // lost or wrongly acknowledged. Only the submit-path append rejects
    // work, because there the acknowledgement *is* the durability promise.
    logf("journal: append failed: %s", ex.what());
  }
}

void Daemon::compact_journal() {
  if (journal_ == nullptr) return;
  std::vector<Json> records;
  records.reserve(2 * jobs_.size());
  for (const auto& [id, entry] : jobs_) {
    if (entry.submit_json.is_object()) {
      records.push_back(submitted_record(id, entry));
    }
    Json record = Json::object();
    if (entry.terminal) {
      record.set("type", Json("terminal"));
      record.set("job", Json(id));
      record.set("status", status_body(id, entry));
      records.push_back(std::move(record));
    } else if (entry.started) {
      record.set("type", Json("started"));
      record.set("job", Json(id));
      records.push_back(std::move(record));
    }
  }
  try {
    journal_->rewrite(records);
    logf("journal: compacted to %zu record(s)", records.size());
  } catch (const Error& ex) {
    logf("journal: compaction failed: %s", ex.what());
  }
}

void Daemon::init_journal() {
  JournalReplay replay = replay_journal(options_.journal_path);
  if (replay.tail_dropped) {
    logf("journal: dropping uncommitted tail of %s (%s)",
         options_.journal_path.c_str(), replay.tail_error.c_str());
  }

  // Fold the record stream into per-job recovery state. Later records
  // win (a job's terminal status supersedes its progress markers).
  struct Recovered {
    Json submit;
    bool have_submit = false;
    bool started = false;
    std::optional<Json> terminal;
  };
  std::map<std::uint64_t, Recovered> recovered;
  for (const Json& record : replay.records) {
    if (!record.contains("type") || !record.at("type").is_string() ||
        !record.contains("job") || !record.at("job").is_number()) {
      continue;  // unknown shape: skip, stay forward-compatible
    }
    const std::string type = record.at("type").as_string();
    const auto id = static_cast<std::uint64_t>(record.at("job").as_int());
    Recovered& job = recovered[id];
    if (type == "submitted" && record.contains("submit")) {
      job.submit = record.at("submit");
      job.have_submit = true;
    } else if (type == "started") {
      job.started = true;
    } else if (type == "terminal" && record.contains("status")) {
      job.terminal = record.at("status");
    }
  }

  std::size_t restored = 0;
  std::size_t requeued = 0;
  for (auto& [id, job] : recovered) {
    next_job_id_ = std::max(next_job_id_, id + 1);
    JobEntry entry;
    if (job.have_submit) entry.submit_json = job.submit;

    if (job.terminal.has_value()) {
      // Finished before the restart: keep the recorded status answerable
      // under the original job id.
      entry.terminal = true;
      entry.restored_status = std::move(job.terminal);
      if (entry.restored_status->contains("class") &&
          entry.restored_status->at("class").is_string()) {
        entry.priority_class =
            entry.restored_status->at("class").as_string();
      }
      jobs_.emplace(id, std::move(entry));
      retain_completed(id);
      ++restored;
      continue;
    }
    if (!job.have_submit) continue;  // nothing actionable

    // Acknowledged but never finished: re-enqueue from the journaled
    // submit body under the original wire id. Construction seeds ride in
    // the body, so a pinned job re-runs bit-identically.
    std::string cls = "normal";
    try {
      const WireSubmit request = wire_submit_from_json(job.submit);
      cls = request.priority_class;
      (void)MapperRegistry::instance().at(
          MapperRegistry::split_spec(request.mapper_spec).first);

      MapJob mjob;
      mjob.graph = resolve_graph(request);
      mjob.platform = resolve_platform(request);
      mjob.mapper_spec = request.mapper_spec;
      mjob.inner_orders = 0;
      mjob.reporting_orders = request.reporting_orders;
      mjob.priority = request.priority;
      mjob.allow_warm_start = request.warm;
      if (request.construction_seed.has_value()) {
        mjob.construction_rng = Rng(*request.construction_seed);
      }
      const std::uint64_t wire_id = id;
      mjob.on_terminal = [this, wire_id](std::uint64_t, JobStatus,
                                         const MapJobResult&) {
        Event event;
        event.kind = Event::Kind::kTerminal;
        event.job = wire_id;
        push_event(std::move(event));
      };
      mjob.on_start = [this, wire_id](std::uint64_t) {
        Event event;
        event.kind = Event::Kind::kStarted;
        event.job = wire_id;
        push_event(std::move(event));
      };
      MapRequest run;
      run.deadline_ms = request.deadline_ms;
      run.max_evaluations = request.max_evaluations;
      run.max_iterations = request.max_iterations;
      run.seed = request.seed;
      run.on_incumbent = [this, wire_id](const IncumbentRecord& record) {
        Event event;
        event.kind = Event::Kind::kIncumbent;
        event.job = wire_id;
        event.incumbent = record;
        push_event(std::move(event));
      };

      // Recovery may momentarily hold more than max_queued jobs (what was
      // queued plus what was running at the crash); wait for queue space
      // instead of dropping acknowledged work.
      std::optional<MappingService::JobHandle> handle =
          service_->try_submit(mjob, run);
      for (int i = 0; !handle.has_value() && i < 3000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        handle = service_->try_submit(mjob, run);
      }
      require(handle.has_value(),
              "journal recovery: queue stayed full for 30s");

      entry.handle = *std::move(handle);
      entry.priority_class = request.priority_class;
      entry.want_mapping = request.want_mapping;
      ++outstanding_;
      jobs_.emplace(id, std::move(entry));
      ++requeued;
    } catch (const Error& ex) {
      // The journaled body no longer runs (mapper renamed, schema drift):
      // surface it as a failed job rather than forgetting it.
      Json status = Json::object();
      status.set("job", Json(id));
      status.set("class", Json(cls));
      status.set("state", Json("failed"));
      status.set("error",
                 Json(std::string("journal recovery: ") + ex.what()));
      entry.terminal = true;
      entry.restored_status = std::move(status);
      entry.priority_class = cls;
      jobs_.emplace(id, std::move(entry));
      retain_completed(id);
      ++restored;
    }
  }

  // Open for append and compact away replaced/duplicate records (and any
  // dropped tail bytes) right away.
  journal_ = std::make_unique<Journal>(options_.journal_path);
  compact_journal();
  if (!recovered.empty() || replay.tail_dropped) {
    logf("journal: replayed %s (%zu record(s): %zu terminal restored, "
         "%zu re-enqueued)",
         options_.journal_path.c_str(), replay.records.size(), restored,
         requeued);
  }
}

// ---- IO loop ---------------------------------------------------------------

void Daemon::accept_clients(double now) {
  (void)now;
  if (!listener_ || !listener_->valid()) return;
  for (;;) {
    Socket client = listener_->accept_client();
    if (!client.valid()) return;
    if (failpoint("daemon.accept")) {
      // Injected accept failure: drop the fresh connection on the floor
      // (the client sees an immediate close and retries with backoff).
      continue;
    }
    const std::uint64_t id = next_session_id_++;
    SessionConfig config;
    config.idle_timeout_s = options_.idle_timeout_s;
    conns_.emplace(id, Conn(std::move(client), id, *this, config,
                            options_.max_frame_bytes));
    logf("session %llu connected", static_cast<unsigned long long>(id));
  }
}

bool Daemon::enqueue_lines(Conn& conn,
                           const std::vector<std::string>& lines) {
  for (const std::string& line : lines) conn.outbuf += line;
  if (conn.outbuf.size() > kMaxOutbufBytes) {
    // The peer stopped reading: drop it rather than buffer unboundedly.
    conn.socket.close();
    return false;
  }
  return flush_outbuf(conn);
}

bool Daemon::flush_outbuf(Conn& conn) {
  if (!conn.socket.valid()) return false;
  if (failpoint("daemon.flush")) {
    // Injected write failure: the connection dies mid-stream, exactly
    // like a peer vanishing between our send and its read.
    conn.socket.close();
    return false;
  }
  while (!conn.outbuf.empty()) {
    const ssize_t n =
        send_some(conn.socket.fd(), conn.outbuf.data(), conn.outbuf.size());
    if (n < 0) {
      conn.socket.close();
      return false;
    }
    if (n == 0) return true;  // EAGAIN: poll will report POLLOUT
    conn.outbuf.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

void Daemon::conn_readable(std::uint64_t id, Conn& conn, double now) {
  (void)id;
  char buffer[4096];
  bool eof = false;
  std::vector<std::string> frames;
  for (;;) {
    const ssize_t n = recv_some(conn.socket.fd(), buffer, sizeof(buffer));
    if (n == 0) break;  // EAGAIN: drained the socket
    if (n < 0) {
      eof = true;
      break;
    }
    if (!conn.reader.feed(buffer, static_cast<std::size_t>(n), frames)) {
      break;  // overflowed: the poisoned reader stops producing
    }
  }
  for (const std::string& frame : frames) {
    if (!enqueue_lines(conn, conn.session.on_frame(frame, now))) return;
  }
  if (conn.reader.overflowed()) {
    enqueue_lines(conn, conn.session.on_frame_overflow());
    return;
  }
  if (eof) conn.socket.close();
}

void Daemon::reap_connections(double now) {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    const bool dead = !conn.socket.valid();
    const bool finished = conn.session.closed() && conn.outbuf.empty();
    if (!dead && !finished) {
      ++it;
      continue;
    }
    // The session record outlives an *abrupt* disconnect (peer vanished
    // mid-protocol): detach it and let `resume` re-attach within the
    // resume window. A cleanly-closed session is done — drop the record.
    const auto session_it = sessions_.find(conn.session.id());
    if (session_it != sessions_.end() &&
        session_it->second.conn == it->first) {
      if (dead && !conn.session.closed()) {
        session_it->second.conn = 0;
        session_it->second.detached_at = now;
        logf("session %llu detached (resumable %.0fs)",
             static_cast<unsigned long long>(session_it->first),
             options_.resume_window_s);
      } else {
        sessions_.erase(session_it);
      }
    }
    logf("session %llu closed (%s)",
         static_cast<unsigned long long>(it->first),
         dead ? "peer gone" : to_string(conn.session.state()));
    it = conns_.erase(it);
  }
}

void Daemon::start_drain(double now) {
  draining_ = true;
  double grace = requested_grace_ms_.load(std::memory_order_relaxed);
  if (grace < 0.0) grace = options_.grace_ms;
  grace_deadline_s_ = now + grace / 1e3;
  hard_deadline_s_ = grace_deadline_s_ + std::max(grace, 2000.0) / 1e3;
  if (listener_) listener_->shut();
  logf("draining: %zu job(s) outstanding, grace %.0f ms", outstanding_,
       grace);
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (!conn.session.closed()) {
      enqueue_lines(conn, conn.session.on_server_drain());
    }
  }
}

int Daemon::run() {
  // This thread IS the IO thread for the daemon's lifetime: every
  // io_role_-guarded table below is touched only from this frame and
  // its callees.
  ScopedThreadRole io(io_role_);
  require(listener_.has_value(), "Daemon::run() before bind()");
  if (options_.install_signal_handlers) {
    g_signal_wake_fd.store(wake_write_, std::memory_order_relaxed);
    struct sigaction action {};
    action.sa_handler = signal_drain_handler;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
  }

  bool drain_failed = false;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = none)

  for (;;) {
    const double now = clock_.seconds();
    if (g_signal_drain.exchange(false, std::memory_order_relaxed)) {
      logf("signal received: draining");
      request_drain(-1.0);
    }
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      start_drain(now);
    }
    process_events();

    if (draining_) {
      if (outstanding_ == 0) break;  // every job terminal: finish up
      if (!cancelled_in_flight_ && now >= grace_deadline_s_) {
        cancelled_in_flight_ = true;
        logf("grace deadline: cancelling %zu outstanding job(s)",
             outstanding_);
        for (auto& [id, entry] : jobs_) {
          (void)id;
          if (!entry.terminal) entry.handle.cancel();
        }
      }
      if (now >= hard_deadline_s_) {
        // Last chance: give each job a short timed wait, then abandon.
        for (auto& [id, entry] : jobs_) {
          (void)id;
          if (!entry.terminal) (void)entry.handle.wait_for(50.0);
        }
        process_events();
        if (outstanding_ > 0) {
          logf("hard deadline: abandoning %zu job(s)", outstanding_);
          drain_failed = true;
        }
        break;
      }
    }

    // Periodic housekeeping before sleeping.
    if (options_.idle_timeout_s > 0.0) {
      for (auto& [id, conn] : conns_) {
        (void)id;
        if (!conn.session.closed()) {
          enqueue_lines(conn, conn.session.on_idle_check(now));
        }
      }
    }
    reap_connections(now);
    expire_sessions(now);

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_, POLLIN, 0});
    fd_conn.push_back(0);
    if (listener_->valid()) {
      fds.push_back({listener_->fd(), POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      fds.push_back({conn.socket.fd(), events, 0});
      fd_conn.push_back(id);
    }

    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) {
      throw Error(std::string("Daemon: poll failed: ") +
                  std::strerror(errno));
    }
    if (rc <= 0) continue;

    const double after = clock_.seconds();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_read_) {
        char sink[256];
        while (::read(wake_read_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (listener_->valid() && fds[i].fd == listener_->fd()) {
        accept_clients(after);
        continue;
      }
      const auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end() || !it->second.socket.valid()) continue;
      Conn& conn = it->second;
      if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        conn_readable(fd_conn[i], conn, after);
      }
      if (conn.socket.valid() && (fds[i].revents & POLLOUT)) {
        flush_outbuf(conn);
      }
    }
  }

  // Finish: say goodbye, flush what we can, close everything.
  process_events();
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (conn.socket.valid() && !conn.session.closed()) {
      enqueue_lines(conn, {event_line(
                              "closing",
                              Json(Json::Object{{"reason", Json("drained")}}))});
    }
  }
  conns_.clear();
  if (listener_) listener_->shut();
  logf("drain %s", drain_failed ? "abandoned jobs (exit 1)" : "complete");
  return drain_failed ? 1 : 0;
}

void Daemon::logf(const char* fmt, ...) const {
  if (options_.log == nullptr) return;
  std::va_list args;
  va_start(args, fmt);
  std::fputs("[spmap-daemon] ", options_.log);
  std::vfprintf(options_.log, fmt, args);
  std::fputc('\n', options_.log);
  va_end(args);
  std::fflush(options_.log);
}

}  // namespace spmap
