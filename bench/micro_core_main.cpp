/// Micro-benchmarks (google-benchmark) of the primitives behind the
/// experiments: SP graph generation, Algorithm 1 decomposition, the
/// linear-time model evaluation, subgraph-set construction and the indexed
/// heap. Not a paper figure — these quantify the building blocks and guard
/// against performance regressions.

#include <benchmark/benchmark.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "sched/incremental_evaluator.hpp"
#include "sched/reference_evaluator.hpp"
#include "sp/decomposition_forest.hpp"
#include "sp/subgraph_set.hpp"
#include "util/indexed_heap.hpp"
#include "util/thread_pool.hpp"
#include "wide_case.hpp"

namespace {

using namespace spmap;
using benchcase::WideCase;
using benchcase::random_moves;

void BM_GenerateSpDag(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_sp_dag(n, rng));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GenerateSpDag)->Range(16, 1024)->Complexity();

void BM_DecompositionForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Dag dag = generate_sp_dag(n, rng);
  for (auto _ : state) {
    Rng local(3);
    benchmark::DoNotOptimize(grow_decomposition_forest(dag, local));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecompositionForest)->Range(16, 1024)->Complexity();

void BM_DecompositionForestAlmostSp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Dag base = generate_sp_dag(n, rng);
  const Dag dag = add_random_edges(base, n, rng);
  const auto norm = normalize_source_sink(dag);
  for (auto _ : state) {
    Rng local(5);
    benchmark::DoNotOptimize(grow_decomposition_forest(norm.dag, local));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecompositionForestAlmostSp)->Range(16, 1024)->Complexity();

void BM_SubgraphSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Dag dag = generate_sp_dag(n, rng);
  for (auto _ : state) {
    Rng local(7);
    benchmark::DoNotOptimize(series_parallel_subgraphs(dag, local));
  }
}
BENCHMARK(BM_SubgraphSet)->Range(16, 1024);

void BM_EvaluateMakespan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  Mapping mapping(n, DeviceId(0u));
  for (std::size_t i = 0; i < n; i += 4) {
    mapping.device[i] = DeviceId(1u);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(mapping));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EvaluateMakespan)->Range(16, 4096)->Complexity(benchmark::oN);

void BM_EvaluateMakespanReference(benchmark::State& state) {
  // The retained naive evaluation path — the flat core's baseline.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  ReferenceEvaluator eval(cost);
  Mapping mapping(n, DeviceId(0u));
  for (std::size_t i = 0; i < n; i += 4) {
    mapping.device[i] = DeviceId(1u);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(mapping));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EvaluateMakespanReference)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_IncrementalReassign(benchmark::State& state) {
  // One iteration = probe(random single-task reassignment) on the
  // incremental engine — the trace-free local-search probe primitive — on
  // the same (SP graph, reference platform, scattered mapping) case as
  // BM_EvaluateMakespan. This configuration is queue- and link-saturated,
  // so most probes genuinely reprice a large suffix; see the *Wide variants
  // for the dependency-bound regime.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  Mapping mapping(n, DeviceId(0u));
  for (std::size_t i = 0; i < n; i += 4) {
    mapping.device[i] = DeviceId(1u);
  }
  IncrementalEvaluator inc(eval);
  inc.reset(mapping);
  const auto moves = random_moves(1024, mapping, platform.device_count(), 12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.probe(moves[i]));
    i = (i + 1) & 1023;
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IncrementalReassign)->Range(16, 4096);

void BM_EvaluateMakespanWide(benchmark::State& state) {
  // Full flat evaluation of the wide-workflow many-core case — the
  // denominator of the incremental speedup in that regime.
  const auto n = static_cast<std::size_t>(state.range(0));
  WideCase c(n, 8);
  const CostModel cost(c.dag, c.attrs, c.platform);
  const Evaluator eval(cost);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate(c.mapping));
  }
  state.SetComplexityN(static_cast<std::int64_t>(c.dag.node_count()));
}
BENCHMARK(BM_EvaluateMakespanWide)->Range(256, 4096);

void BM_IncrementalReassignWide(benchmark::State& state) {
  // The probe primitive on the wide-workflow many-core case: perturbations
  // are absorbed at joins and idle slots, so a probe re-prices
  // only a short affected suffix (>= 5x faster than the full sweep at 4096
  // tasks; recorded in BENCH_eval.json by bench_perf_report).
  const auto n = static_cast<std::size_t>(state.range(0));
  WideCase c(n, 8);
  const CostModel cost(c.dag, c.attrs, c.platform);
  const Evaluator eval(cost);
  IncrementalEvaluator inc(eval);
  inc.reset(c.mapping);
  const auto moves =
      random_moves(1024, c.mapping, c.platform.device_count(), 12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc.probe(moves[i]));
    i = (i + 1) & 1023;
  }
  state.SetComplexityN(static_cast<std::int64_t>(c.dag.node_count()));
}
BENCHMARK(BM_IncrementalReassignWide)->Range(256, 4096);

void BM_EvaluateBatch(benchmark::State& state) {
  // args: nodes, worker threads. Batch of 64 candidate mappings per call —
  // the shape of one NSGA-II generation or a decomposition frontier chunk.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  std::vector<Mapping> batch;
  batch.reserve(64);
  for (int i = 0; i < 64; ++i) {
    batch.push_back(random_feasible_mapping(cost, rng));
  }
  ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.evaluate_batch(batch, &pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EvaluateBatch)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({4096, 1})
    ->Args({4096, 4});

void BM_IndexedHeapChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  IndexedMaxHeap heap(n);
  for (std::size_t k = 0; k < n; ++k) {
    heap.push_or_update(k, rng.uniform());
  }
  for (auto _ : state) {
    const std::size_t key = rng.below(n);
    heap.push_or_update(key, rng.uniform());
    benchmark::DoNotOptimize(heap.top());
  }
}
BENCHMARK(BM_IndexedHeapChurn)->Range(64, 4096);

void BM_BfsOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(10);
  const Dag dag = generate_sp_dag(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_order(dag));
  }
}
BENCHMARK(BM_BfsOrder)->Range(64, 4096);

}  // namespace

BENCHMARK_MAIN();
