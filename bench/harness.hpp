#pragma once
/// \file harness.hpp
/// Shared experiment scaffolding for the per-figure bench binaries.
///
/// Every experiment follows the paper's protocol (Section IV-A):
///  * mappers run against an *inner* evaluator (breadth-first schedule
///    only — the linear-time cost function used during mapping);
///  * reported makespans use the *reporting* evaluator: minimum over a
///    breadth-first schedule and 100 random schedules;
///  * quality is the average positive relative improvement over the all-CPU
///    mapping (deteriorations count as zero);
///  * execution time is the wall-clock time of the mapper itself.
///
/// Binaries print one TSV block per metric (improvement, execution time)
/// to stdout plus a human-readable summary, and accept --seed / --graphs /
/// size flags so paper-scale runs are one flag away.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "mappers/mapper.hpp"
#include "model/platform.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace spmap::bench {

/// Factory for one algorithm under test. Mapper construction (e.g. the SP
/// decomposition of the graph) is part of the timed region, matching the
/// paper's end-to-end execution times.
struct MapperSpec {
  std::string name;
  std::function<std::unique_ptr<Mapper>(const Dag& dag, Rng& rng)> make;
};

/// The one way experiments pick algorithms: a MapperRegistry spec string
/// ("name" or "name:key=value,..."). `display` overrides the name used in
/// result tables (default: the registry entry's display name). The spec is
/// resolved eagerly, so typos fail at experiment setup, not mid-sweep.
MapperSpec spec_from_registry(const std::string& registry_spec,
                              std::string display = "");

/// One generated test case.
struct Case {
  Dag dag;
  TaskAttrs attrs;
};

/// Aggregated metrics of one algorithm at one x-value.
struct AlgoMetrics {
  Samples improvement;     ///< positive relative improvement per graph
  Samples mapper_seconds;  ///< wall-clock mapper time per graph
};

/// Runs every spec on every case; returns metrics keyed by spec name.
/// `reporting_orders` is the number of random schedules for reported
/// makespans (paper: 100).
std::map<std::string, AlgoMetrics> run_point(
    const std::vector<Case>& cases, const std::vector<MapperSpec>& specs,
    const Platform& platform, Rng& rng, std::size_t reporting_orders = 100);

/// Standard mapper specs (shared across figures).
MapperSpec heft_spec();
MapperSpec peft_spec();
MapperSpec single_node_spec(bool first_fit);
MapperSpec series_parallel_spec(bool first_fit);
MapperSpec nsga2_spec(std::size_t generations);
MapperSpec wgdp_device_spec(double time_limit_s);
MapperSpec wgdp_time_spec(double time_limit_s);
MapperSpec zhouliu_spec(double time_limit_s);

/// Emits the two TSV blocks (improvement / execution time) for a sweep.
/// `rows[i]` holds the metrics of sweep point `xs[i]`.
void print_series(const std::string& experiment, const std::string& x_name,
                  const std::vector<double>& xs,
                  const std::vector<std::map<std::string, AlgoMetrics>>& rows,
                  const std::vector<std::string>& algo_order);

}  // namespace spmap::bench
