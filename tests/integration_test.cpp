/// End-to-end integration tests: the full pipeline a downstream user runs —
/// generate / import a workload, decompose, map with several algorithms,
/// extract and validate the schedule, compute energy, round-trip through
/// serialization.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mappers/cpu_only.hpp"
#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/lookahead_heft.hpp"
#include "mappers/multi_objective.hpp"
#include "mappers/peft.hpp"
#include "sched/schedule.hpp"
#include "sp/recognizer.hpp"
#include "workflows/workflows.hpp"

namespace spmap {
namespace {

TEST(Integration, FullPipelineOnWorkflow) {
  Rng rng(42);
  // 1. Generate a realistic workload.
  WorkflowInstance inst =
      generate_workflow(WorkflowFamily::Epigenomics, 10, rng);

  // 2. Serialize and re-import (as a user persisting workloads would).
  const std::string json = to_json(inst.dag, inst.attrs);
  const TaskGraph tg = task_graph_from_json(json);

  // 3. Model + evaluator.
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const Evaluator eval(cost, {.random_orders = 50});
  const double baseline = eval.default_mapping_makespan();
  ASSERT_GT(baseline, 0.0);

  // 4. Map with the headline algorithm.
  auto mapper = make_series_parallel_mapper(tg.dag, rng, true);
  const MapperResult r = mapper->map(eval);
  EXPECT_LE(r.predicted_makespan, baseline);

  // 5. Extract, validate and export the schedule.
  const Schedule schedule = extract_schedule(eval, r.mapping);
  EXPECT_NO_THROW(schedule.validate(tg.dag, platform, r.mapping));
  EXPECT_NEAR(schedule.makespan, eval.evaluate(r.mapping), 1e-12);
  const Json sjson = schedule.to_json(tg.dag, platform);
  EXPECT_EQ(sjson.at("tasks").as_array().size(), tg.dag.node_count());

  // 6. Energy accounting is finite and positive.
  const double energy =
      mapping_energy_joules(cost, r.mapping, schedule.makespan);
  EXPECT_GT(energy, 0.0);
  EXPECT_LT(energy, kInfeasible);
}

TEST(Integration, AllMappersAgreeOnTrivialGraph) {
  // A single-task graph: every algorithm must map it somewhere feasible
  // and report the same best single-device time.
  Dag dag(1);
  dag.set_label(NodeId(0), "only");
  TaskAttrs attrs;
  attrs.resize(1);
  attrs.complexity[0] = 8.0;
  attrs.parallelizability[0] = 1.0;
  attrs.streamability[0] = 8.0;
  attrs.area[0] = 8.0;
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  // With no edges there is no data; the task is free everywhere.
  CpuOnlyMapper cpu;
  HeftMapper heft;
  LookaheadHeftMapper laheft;
  PeftMapper peft;
  Rng rng(1);
  auto sp = make_series_parallel_mapper(dag, rng, true);
  for (Mapper* m : std::initializer_list<Mapper*>{&cpu, &heft, &laheft,
                                                  &peft, sp.get()}) {
    const MapperResult r = m->map(eval);
    EXPECT_NO_THROW(r.mapping.validate(1, platform.device_count()))
        << m->name();
    EXPECT_LT(r.predicted_makespan, kInfeasible) << m->name();
  }
}

TEST(Integration, DecompositionBeatsListSchedulingOnStreamChains) {
  // The paper's central claim, end to end: on deep, data-bound streamable
  // pipelines pinned to the host at both ends, per-task EFT reasoning
  // (HEFT) never crosses the expensive boundary transfer, while the SP
  // decomposition moves whole branch interiors onto the FPGA at once.
  //
  // Structure: io_head -> one deep 8-stage chain -> io_tail, plus a tiny
  // metadata side branch head -> m -> tail (so the chain interior is a
  // series operation nested in a parallel one, i.e. an SP candidate).
  Rng rng(5);
  constexpr std::size_t kStages = 8;
  Dag dag(3 + kStages);
  const NodeId head(0);
  const NodeId tail(1);
  const NodeId meta(2);
  dag.add_edge(head, meta, 10.0);
  dag.add_edge(meta, tail, 10.0);
  std::uint32_t next = 3;
  NodeId prev = head;
  for (std::size_t s = 0; s < kStages; ++s) {
    const NodeId cur(next++);
    dag.add_edge(prev, cur, 400.0);  // heavy payloads
    prev = cur;
  }
  dag.add_edge(prev, tail, 400.0);
  TaskAttrs attrs;
  attrs.resize(dag.node_count());
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    // Data-bound stages: the ~270 ms boundary transfer exceeds what any
    // single move can save.
    attrs.complexity[i] = 2.0;
    attrs.parallelizability[i] = 0.2;  // thread-hostile
    attrs.streamability[i] = 12.0;     // dataflow-friendly
    attrs.area[i] = 6.0;               // both branches fit the FPGA
  }
  // Head and tail are host I/O: they pin the pipeline ends to the CPU.
  for (const NodeId io : {head, tail}) {
    attrs.parallelizability[io.v] = 0.9;
    attrs.streamability[io.v] = 0.05;
  }
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 20});
  const double baseline = eval.default_mapping_makespan();

  HeftMapper heft;
  auto sn = make_single_node_mapper(dag, true);
  auto sp = make_series_parallel_mapper(dag, rng, true);
  const double heft_ms = eval.evaluate(heft.map(eval).mapping);
  const double sn_ms = eval.evaluate(sn->map(eval).mapping);
  const double sp_ms = eval.evaluate(sp->map(eval).mapping);

  EXPECT_LT(sp_ms, 0.75 * baseline) << "SP must stream the branches";
  EXPECT_LT(sp_ms, heft_ms) << "HEFT stays behind the transfer barrier";
  EXPECT_LT(sp_ms, sn_ms) << "single moves cannot cross the barrier";
}

TEST(Integration, LookaheadHeftValidAndComparableToHeft) {
  Rng rng(9);
  for (int rep = 0; rep < 5; ++rep) {
    const Dag base = generate_sp_dag(40, rng);
    const Dag dag = add_random_edges(base, 10, rng);
    const TaskAttrs attrs = random_task_attrs(dag, rng);
    const Platform platform = reference_platform();
    const CostModel cost(dag, attrs, platform);
    const Evaluator eval(cost);
    HeftMapper heft;
    LookaheadHeftMapper laheft;
    const MapperResult rh = heft.map(eval);
    const MapperResult rl = laheft.map(eval);
    EXPECT_NO_THROW(
        rl.mapping.validate(dag.node_count(), platform.device_count()));
    EXPECT_TRUE(cost.area_feasible(rl.mapping));
    // Not necessarily better on every instance, but in the same regime.
    EXPECT_LT(rl.predicted_makespan, 3.0 * rh.predicted_makespan);
  }
}

TEST(Integration, DecomposeRecognizeAgreeOnWorkflows) {
  Rng rng(11);
  for (const WorkflowFamily family : all_workflow_families()) {
    const WorkflowInstance inst = generate_workflow(family, 8, rng);
    const Normalized norm = normalize_source_sink(inst.dag);
    const bool sp = is_series_parallel(norm.dag);
    const auto result = grow_decomposition_forest(norm.dag, rng);
    EXPECT_EQ(result.cuts == 0, sp) << workflow_family_name(family);
    result.forest.validate(norm.dag);
  }
}

TEST(Integration, ScalarizedSweepBracketsSingleObjectiveResult) {
  // The w = 1 scalarization is exactly the single-objective SPFirstFit
  // objective; its makespan must match a direct run on the same subgraphs.
  Rng rng(13);
  const Dag dag = generate_sp_dag(30, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  Rng sweep_rng(99);
  const auto front = decomposition_pareto_sweep(eval, dag, sweep_rng, {1.0});
  ASSERT_EQ(front.size(), 1u);
  Rng direct_rng(99);
  auto direct = make_series_parallel_mapper(dag, direct_rng, true);
  const MapperResult r = direct->map(eval);
  EXPECT_NEAR(front.front().makespan, r.predicted_makespan, 1e-9);
}

}  // namespace
}  // namespace spmap
