#pragma once
/// \file recognizer.hpp
/// Recognition of two-terminal series-parallel DAGs via series/parallel
/// reductions (Valdes/Tarjan/Lawler style; cf. paper Section II-C).
///
/// Independent of Algorithm 1, this provides the ground truth for property
/// tests: a DAG is two-terminal series-parallel iff it reduces to a single
/// edge by repeatedly (a) merging duplicate edges and (b) contracting
/// interior nodes with in-degree 1 and out-degree 1.

#include "graph/dag.hpp"

namespace spmap {

/// True iff `dag` (which must have a unique source and a unique sink — run
/// normalize_source_sink first if needed) is two-terminal series-parallel.
/// Graphs with a single node and no edges count as series-parallel.
bool is_series_parallel(const Dag& dag);

}  // namespace spmap
