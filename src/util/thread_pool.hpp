#pragma once
/// \file thread_pool.hpp
/// Persistent worker pool with a deterministic parallel_for.
///
/// The pool exists for the evaluator's batch API: many independent,
/// identically-shaped work items (candidate mappings) that each need a
/// per-worker scratch buffer. Work is split by *static* partitioning —
/// worker `w` always receives the same contiguous index block for a given
/// (n, worker_count) — so any computation whose items are independent
/// produces bit-identical results regardless of the worker count or
/// scheduling jitter.
///
/// The calling thread participates as worker 0; a pool of `threads == 1`
/// spawns no OS threads at all and runs everything inline, so serial
/// callers pay nothing. Worker threads live until the pool is destroyed,
/// avoiding per-call thread spawn costs in generation loops that dispatch
/// thousands of small batches.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spmap {

class ThreadPool {
 public:
  /// A pool with `threads` workers total (including the calling thread).
  /// `threads == 0` is promoted to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (calling thread + background threads).
  std::size_t thread_count() const { return thread_count_; }

  /// Runs `fn(begin, end, worker)` over a static partition of [0, n) into
  /// `thread_count()` contiguous blocks and blocks until all are done.
  /// Worker ids are in [0, thread_count()); the caller runs block 0.
  /// `fn` must not recurse into the same pool. Exceptions thrown by any
  /// worker are rethrown (one of them) on the calling thread after the
  /// parallel region completes.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t begin, std::size_t end,
                               std::size_t worker)>& fn);

  /// Block of worker `w` in the static partition of [0, n) over `workers`.
  static std::pair<std::size_t, std::size_t> partition(std::size_t n,
                                                       std::size_t workers,
                                                       std::size_t w);

 private:
  void worker_loop(std::size_t worker);

  std::size_t thread_count_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Job state, guarded by mutex_.
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_ =
      nullptr;
  std::size_t job_n_ = 0;
  std::uint64_t job_epoch_ = 0;  // bumped per parallel_for call
  std::size_t pending_ = 0;      // workers still running the current job
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace spmap
