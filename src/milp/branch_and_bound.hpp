#pragma once
/// \file branch_and_bound.hpp
/// Depth-first branch-and-bound MIP solver on top of the simplex LP
/// relaxation — the spmap substitution for Gurobi (see DESIGN.md).
///
/// Features: most-fractional branching with value-guided dive order, a
/// round-to-nearest incumbent heuristic at every node, warm starts, and a
/// wall-clock time limit. Like the commercial solver it replaces, it returns
/// the best incumbent found when the limit expires — which is exactly the
/// behaviour the paper reports for the ZhouLiu MILP beyond 20 tasks.

#include <cstddef>
#include <functional>
#include <vector>

#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace spmap {

enum class MipStatus {
  Optimal,     ///< Search completed; incumbent is optimal.
  Feasible,    ///< Limit hit; best incumbent returned.
  Infeasible,  ///< Search completed; no feasible point exists.
  NoSolution,  ///< Limit hit before any incumbent was found.
};

struct MipParams {
  double time_limit_s = 10.0;    ///< <= 0 disables the limit.
  std::size_t max_nodes = 1000000;
  double int_tol = 1e-6;
  /// Prune nodes whose LP bound is within this of the incumbent.
  double gap_abs = 1e-9;
  /// Optional cooperative interrupt, polled once per node. Returning true
  /// stops the search like an expired time limit (the incumbent survives);
  /// the caller knows why it fired. Must be cheap and thread-safe.
  std::function<bool()> interrupt;
};

struct MipResult {
  MipStatus status = MipStatus::NoSolution;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes = 0;
  bool timed_out = false;

  bool has_solution() const {
    return status == MipStatus::Optimal || status == MipStatus::Feasible;
  }
};

class MipSolver {
 public:
  explicit MipSolver(MipParams params = {}) : params_(params) {}

  /// Solves `model` (minimization). `warm_start`, if given and feasible,
  /// seeds the incumbent — guaranteeing a solution at any time limit.
  MipResult solve(const MilpModel& model,
                  const std::vector<double>* warm_start = nullptr) const;

 private:
  MipParams params_;
};

}  // namespace spmap
