#include "serve/client.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmap {

WireClient::WireClient(const Endpoint& endpoint, WireClientOptions options)
    : endpoint_(endpoint),
      options_(options),
      jitter_rng_(options.jitter_seed),
      socket_(),
      reader_(options.max_frame_bytes) {
  socket_ = connect_with_backoff();
  handshake_hello(options_.connect_timeout_ms);
}

WireClient::WireClient(const Endpoint& endpoint, double connect_timeout_ms,
                       std::size_t max_frame_bytes)
    : WireClient(endpoint, [&] {
        WireClientOptions options;
        options.connect_timeout_ms = connect_timeout_ms;
        options.max_frame_bytes = max_frame_bytes;
        return options;
      }()) {}

Socket WireClient::connect_with_backoff() {
  double delay = options_.backoff_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return connect_endpoint(endpoint_, options_.connect_timeout_ms);
    } catch (const Error&) {
      if (attempt >= options_.connect_retries) throw;
    }
    // Deterministic jitter in [0.5, 1.0] of the nominal delay: spreads a
    // thundering herd of reconnecting clients without making test runs
    // timing-dependent (same jitter_seed, same schedule).
    const double unit =
        0.5 + 0.5 * (static_cast<double>(jitter_rng_() >> 11) * 0x1.0p-53);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay * unit));
    delay = std::min(2.0 * delay, options_.backoff_max_ms);
  }
}

void WireClient::adopt_identity(const Json& answer) {
  if (answer.contains("session") && answer.at("session").is_number()) {
    session_ = static_cast<std::uint64_t>(answer.at("session").as_int());
  }
  if (answer.contains("token") && answer.at("token").is_string()) {
    token_ = answer.at("token").as_string();
  }
}

void WireClient::handshake_hello(double timeout_ms) {
  Json hello = Json::object();
  hello.set("op", Json("hello"));
  hello.set("proto", Json(kWireProtocol));
  send(hello);
  std::optional<Json> answer = recv(timeout_ms);
  require(answer.has_value(), "WireClient: handshake timed out");
  require(answer->contains("ok") && answer->at("ok").is_bool() &&
              answer->at("ok").as_bool(),
          "WireClient: handshake refused: " + answer->dump());
  adopt_identity(*answer);
  hello_info_ = *std::move(answer);
}

bool WireClient::reconnect(bool try_resume) {
  socket_ = connect_with_backoff();
  reader_ = FrameReader(options_.max_frame_bytes);
  pending_.clear();
  pending_next_ = 0;

  if (try_resume && !token_.empty()) {
    Json resume = Json::object();
    resume.set("op", Json("resume"));
    resume.set("proto", Json(kWireProtocol));
    resume.set("token", Json(token_));
    resume.set("last_seq", Json(last_event_seq_));
    send(resume);
    std::optional<Json> answer = recv(options_.connect_timeout_ms);
    require(answer.has_value(), "WireClient: resume timed out");
    if (answer->contains("ok") && answer->at("ok").is_bool() &&
        answer->at("ok").as_bool()) {
      // Resumed: the replayed events follow as ordinary frames and are
      // picked up by the caller's next recv calls.
      adopt_identity(*answer);
      return true;
    }
    // unknown_session (daemon restarted or window closed): the session
    // stayed in its handshake state — fall back to a fresh hello on the
    // very same connection.
  }
  session_ = 0;
  token_.clear();
  last_event_seq_ = 0;
  handshake_hello(options_.connect_timeout_ms);
  return false;
}

void WireClient::drop_connection() {
  // shutdown, not close: the fd stays pollable, so a blocked recv wakes
  // with EOF immediately instead of timing out on a dead descriptor.
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_RDWR);
}

void WireClient::send(const Json& frame) { send_raw(frame.dump() + "\n"); }

void WireClient::send_raw(const std::string& line) {
  require(socket_.valid(), "WireClient: not connected");
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        send_some(socket_.fd(), line.data() + sent, line.size() - sent);
    if (n < 0) throw Error("WireClient: connection lost while sending");
    if (n == 0) {
      // Blocking socket: EAGAIN should not happen, but poll to be safe.
      pollfd pfd{socket_.fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<Json> WireClient::recv(double timeout_ms) {
  require(socket_.valid(), "WireClient: not connected");
  const WallTimer timer;
  char buffer[4096];
  for (;;) {
    if (pending_next_ < pending_.size()) {
      const std::string line = std::move(pending_[pending_next_++]);
      if (pending_next_ == pending_.size()) {
        pending_.clear();
        pending_next_ = 0;
      }
      Json frame = Json::parse(line);
      require(frame.is_object(), "WireClient: non-object frame: " + line);
      if (frame.contains("event_seq") && frame.at("event_seq").is_number()) {
        last_event_seq_ = std::max(
            last_event_seq_,
            static_cast<std::uint64_t>(frame.at("event_seq").as_int()));
      }
      return frame;
    }
    int wait_ms = -1;
    if (timeout_ms > 0.0) {
      const double left = timeout_ms - timer.millis();
      if (left <= 0.0) return std::nullopt;
      wait_ms = static_cast<int>(left) + 1;
    }
    pollfd pfd{socket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) {
      throw Error(std::string("WireClient: poll failed: ") +
                  std::strerror(errno));
    }
    if (rc <= 0) continue;  // timeout re-checked at the top
    const ssize_t n = recv_some(socket_.fd(), buffer, sizeof(buffer));
    if (n < 0) throw Error("WireClient: connection closed by the server");
    if (n == 0) continue;
    require(reader_.feed(buffer, static_cast<std::size_t>(n), pending_),
            "WireClient: oversized frame from the server");
  }
}

std::optional<Json> WireClient::recv_event(const std::string& event,
                                           double timeout_ms) {
  const WallTimer timer;
  for (;;) {
    double left = -1.0;
    if (timeout_ms > 0.0) {
      left = timeout_ms - timer.millis();
      if (left <= 0.0) return std::nullopt;
    }
    std::optional<Json> frame = recv(left);
    if (!frame.has_value()) return std::nullopt;
    if (frame->contains("event") && frame->at("event").is_string() &&
        frame->at("event").as_string() == event) {
      return frame;
    }
  }
}

}  // namespace spmap
