/// Fig. 4 — HEFT/PEFT vs. decomposition mapping (basic and FirstFit) on
/// random series-parallel graphs from 5 to 200 tasks.
///
/// Paper shape to reproduce: HEFT/PEFT run in microseconds but their
/// mapping quality decays with graph size; the four decomposition variants
/// hold their relative improvement roughly constant, with SeriesParallel
/// about 5 % above SingleNode; FirstFit cuts decomposition execution time
/// by a large fraction at equal quality; for large graphs SeriesParallel
/// becomes *faster* than SingleNode because bigger subgraphs are replaced
/// at once.
///
/// This binary is a thin wrapper over the committed scenario file
/// `scenarios/fig4_list_scheduling.json` — the experiment itself (platform,
/// workload, mapper line-up, sweep) lives there, so `spmap_cli sweep`
/// reproduces it identically. Flags override the scenario for quick runs.
///
/// Flags: --scenario FILE --sizes=5,20,... --graphs N --seed S
///        --threads N --out results.json

#include <cstdio>
#include <iostream>

#include "bench/scenario.hpp"
#include "bench/scenario_runner.hpp"
#include "util/flags.hpp"

using namespace spmap;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"scenario", "sizes", "graphs", "seed", "threads", "out"});
  try {
    Scenario scenario = load_scenario_file(flags.get(
        "scenario", std::string(SPMAP_SCENARIO_DIR) +
                        "/fig4_list_scheduling.json"));
    if (flags.has("sizes")) {
      require(scenario.sweep.enabled(),
              "--sizes: scenario has no sweep axis to override");
      scenario.sweep.values = flags.get_int_list("sizes", {});
      require(!scenario.sweep.values.empty(),
              "--sizes: need at least one value");
    }
    if (flags.has("graphs")) {
      const auto graphs = flags.get_int("graphs", 10);
      require(graphs >= 1, "--graphs must be >= 1");
      scenario.repetitions = static_cast<std::size_t>(graphs);
    }
    if (flags.has("seed")) {
      scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));
    }
    SweepRunOptions options;
    const auto threads = flags.get_int("threads", 1);
    require(threads >= 1, "--threads must be >= 1");
    options.threads = static_cast<std::size_t>(threads);

    run_report_write(scenario, options, flags.get("out", ""), std::cout);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bench_fig4_list_scheduling: %s\n", ex.what());
    return 1;
  }
  return 0;
}
