#pragma once
/// \file model.hpp
/// Mixed-integer linear program model builder.
///
/// This is the spmap substitution for the Gurobi models of the paper (see
/// DESIGN.md): a small, self-contained MILP representation consumed by the
/// simplex + branch-and-bound solver in this module. All problems are
/// minimization problems.

#include <string>
#include <vector>

#include "util/error.hpp"

namespace spmap {

enum class VarKind { Continuous, Binary, Integer };
enum class RowSense { Le, Ge, Eq };

/// A linear term: coefficient * variable.
struct LinTerm {
  int var;
  double coeff;
};

class MilpModel {
 public:
  /// Adds a variable; returns its index. Binary variables get bounds [0, 1]
  /// regardless of the arguments.
  int add_var(VarKind kind, double lb, double ub, double obj_coeff,
              std::string name = {});

  int add_continuous(double lb, double ub, double obj, std::string name = {}) {
    return add_var(VarKind::Continuous, lb, ub, obj, std::move(name));
  }
  int add_binary(double obj, std::string name = {}) {
    return add_var(VarKind::Binary, 0.0, 1.0, obj, std::move(name));
  }

  /// Adds the constraint `sum(terms) sense rhs`. Terms may repeat a
  /// variable; coefficients are accumulated.
  void add_constraint(std::vector<LinTerm> terms, RowSense sense, double rhs);

  std::size_t var_count() const { return kinds_.size(); }
  std::size_t row_count() const { return rows_.size(); }

  VarKind var_kind(int v) const { return kinds_[check_var(v)]; }
  double lower_bound(int v) const { return lb_[check_var(v)]; }
  double upper_bound(int v) const { return ub_[check_var(v)]; }
  double objective_coeff(int v) const { return obj_[check_var(v)]; }
  const std::string& var_name(int v) const { return names_[check_var(v)]; }
  bool is_integral_kind(int v) const {
    return kinds_[check_var(v)] != VarKind::Continuous;
  }

  struct Row {
    std::vector<LinTerm> terms;
    RowSense sense;
    double rhs;
  };
  const std::vector<Row>& rows() const { return rows_; }

  /// Objective value of an assignment (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows, bounds and integrality within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::size_t check_var(int v) const {
    require(v >= 0 && static_cast<std::size_t>(v) < kinds_.size(),
            "MilpModel: variable index out of range");
    return static_cast<std::size_t>(v);
  }

  std::vector<VarKind> kinds_;
  std::vector<double> lb_, ub_, obj_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace spmap
