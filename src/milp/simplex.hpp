#pragma once
/// \file simplex.hpp
/// Dense two-phase tableau simplex for the LP relaxations used by the
/// branch-and-bound solver.
///
/// Variables may carry finite or infinite bounds; lower bounds are shifted
/// away, finite upper bounds become explicit rows. Phase 1 minimizes the sum
/// of artificial variables; phase 2 minimizes the true objective. Bland's
/// rule is engaged after a stall to guarantee termination on degenerate
/// problems. This is an O(rows * cols) per-pivot dense implementation — fit
/// for the model sizes of the task-mapping formulations (hundreds of rows),
/// not a general-purpose LP code.

#include <vector>

#include "milp/model.hpp"

namespace spmap {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;  // values for the model's variables
};

/// Solves the LP relaxation of `model` (integrality dropped) under
/// overriding bounds `lb`/`ub` (sized var_count; use the model bounds as a
/// starting point and tighten per branch-and-bound node).
LpResult solve_lp(const MilpModel& model, const std::vector<double>& lb,
                  const std::vector<double>& ub,
                  std::size_t max_iterations = 50000);

/// Convenience: LP relaxation with the model's own bounds.
LpResult solve_lp(const MilpModel& model, std::size_t max_iterations = 50000);

}  // namespace spmap
