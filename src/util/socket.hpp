#pragma once
/// \file socket.hpp
/// Minimal POSIX stream-socket helpers for the serving daemon and its
/// clients: an endpoint grammar shared by every tool, RAII file
/// descriptors, and listen/accept/connect wrappers.
///
/// Endpoint grammar (`Endpoint::parse`):
///   unix:/path/to.sock   Unix-domain stream socket
///   /path/to.sock        ditto (a spec containing '/' is a path)
///   tcp:HOST:PORT        IPv4 TCP; HOST is a numeric address
///                        ("127.0.0.1", "0.0.0.0"), PORT 0 asks the
///                        kernel for an ephemeral port (see
///                        `ListenSocket::endpoint()` for the result)
///
/// Everything here throws spmap::Error with errno context on failure and
/// is Linux-only, like the daemon it serves. Writers must use
/// `send_some` (MSG_NOSIGNAL) so a peer that vanished mid-write surfaces
/// as an error return instead of SIGPIPE killing the process.

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace spmap {

/// A parsed listen/connect target (see the file comment for the grammar).
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;          ///< kUnix: filesystem path of the socket
  std::string host;          ///< kTcp: numeric IPv4 address
  std::uint16_t port = 0;    ///< kTcp: port (0 = ephemeral when listening)

  static Endpoint parse(const std::string& spec);
  std::string to_string() const;
};

/// RAII file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// A bound, listening stream socket. Unix listeners own their path: a
/// stale socket file (no listener behind it) is replaced, a live one makes
/// the bind fail; the path is unlinked on destruction.
class ListenSocket {
 public:
  explicit ListenSocket(const Endpoint& endpoint, int backlog = 128);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  int fd() const { return socket_.fd(); }
  /// False once `shut()` closed the listener.
  bool valid() const { return socket_.valid(); }
  /// The endpoint actually bound — for tcp:...:0 the ephemeral port the
  /// kernel picked, so clients can be pointed at it.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Non-blocking accept: an invalid Socket when no connection is
  /// pending. The accepted socket is already non-blocking.
  Socket accept_client() const;

  /// Stops accepting (closes the fd, unlinks a unix path) while the
  /// object lives — the drain step of a shutting-down daemon.
  void shut();

 private:
  Socket socket_;
  Endpoint endpoint_;
  bool unlink_on_close_ = false;
};

/// Blocking connect to an endpoint (client side). `retry_for_ms > 0`
/// retries ECONNREFUSED/ENOENT with a short sleep until the window
/// elapses — the "daemon is still starting" race every spawned client
/// hits.
Socket connect_endpoint(const Endpoint& endpoint, double retry_for_ms = 0.0);

/// Marks `fd` non-blocking (O_NONBLOCK).
void set_nonblocking(int fd);

/// write(2) with MSG_NOSIGNAL: no SIGPIPE on a vanished peer. Returns the
/// bytes written, 0 on EAGAIN/EWOULDBLOCK, -1 on a dead connection.
ssize_t send_some(int fd, const char* data, std::size_t size);

/// read(2) shaped the same way: bytes read, 0 on EAGAIN (nothing there),
/// -1 on EOF or a dead connection.
ssize_t recv_some(int fd, char* data, std::size_t size);

}  // namespace spmap
