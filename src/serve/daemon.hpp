#pragma once
/// \file daemon.hpp
/// The spmap serving daemon: a socket front-end over MappingService.
///
/// One `Daemon` is one listening endpoint (unix-domain or TCP, see
/// util/socket.hpp) speaking `spmap-wire/1` (serve/wire.hpp). The design
/// splits three layers with distinct threading rules:
///
///  * **IO thread** — the thread calling `run()` owns a single poll()
///    loop: the listener, every connection's buffers, every `Session`
///    FSM (serve/session.hpp), and the job table. No connection state is
///    ever touched from another thread.
///  * **Worker threads** — the embedded `MappingService` executes jobs.
///    Its callbacks (`on_incumbent`, `on_terminal`) run on workers; they
///    only append to a mutex-protected event queue and write one byte to
///    a self-pipe, which wakes the IO thread to fan events out to
///    subscribed connections.
///  * **Anyone** — `request_drain()` is safe from any thread and from
///    signal handlers via the same self-pipe (the CLI installs
///    SIGTERM/SIGINT handlers that call it).
///
/// ## Admission
///
/// The service queue is bounded by `max_queued` (running jobs excluded).
/// Submissions are admitted per priority class against *graduated*
/// thresholds — high may fill the whole queue, normal 3/4 of it, low
/// half — so under overload the daemon sheds its least urgent traffic
/// first while high-priority clients still get through. A rejected
/// submit answers `{"ok":false,"error":{"code":"overloaded",...}}`; the
/// connection survives and may retry.
///
/// ## Drain
///
/// `request_drain(grace_ms)` (also the wire `drain` verb and SIGTERM):
/// the listener closes, every session is notified (`draining` event) and
/// moved to its draining state (submits refused, status/cancel/subscribe
/// still served), and in-flight jobs get `grace_ms` to finish. Jobs
/// still live at the grace deadline are cancelled (cooperative, they
/// return their incumbents); jobs still live at the hard deadline
/// (grace + max(grace, 2s)) are abandoned and `run()` returns 1. A
/// clean drain — every job terminal, every `done` event flushed —
/// returns 0.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "serve/mapping_service.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

namespace spmap {

/// Builds a task graph from a wire `generate` spec ({type, tasks, seed,
/// extra_edges, family, width}; see docs/SERVING.md). Shared by the
/// daemon's submit path and the load generator's local bit-identity
/// verification, so the two generation paths cannot drift apart.
TaskGraph graph_from_generate_spec(const Json& spec);

struct DaemonOptions {
  /// Where to listen (unix:PATH or tcp:HOST:PORT; tcp port 0 lets the
  /// kernel pick — read the bound port back from `Daemon::endpoint()`).
  Endpoint endpoint;
  /// MappingService worker threads executing jobs.
  std::size_t workers = 2;
  /// Bound on jobs waiting for a worker; 0 = unbounded (no admission).
  std::size_t max_queued = 64;
  /// Seconds of connection inactivity before an idle close; 0 disables.
  double idle_timeout_s = 0.0;
  /// Default drain grace (finish window before in-flight cancellation).
  double grace_ms = 5000.0;
  /// Frame length limit (serve/wire.hpp).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Service seed: derives the construction rng stream of jobs that do
  /// not pin `construction_seed` themselves.
  std::uint64_t seed = 0x5e9e5eed;
  /// Terminal jobs kept addressable for status/subscribe; older ones are
  /// evicted FIFO (bounds daemon memory under sustained load).
  std::size_t completed_retention = 1024;
  /// Install SIGTERM/SIGINT handlers that trigger a graceful drain
  /// (process-global: for the CLI, not for embedded/test daemons).
  bool install_signal_handlers = false;
  /// Lifecycle log sink (connections, jobs, drain); nullptr = silent.
  std::FILE* log = nullptr;
};

class Daemon : public SessionHost {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon() override;

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds and listens. Throws spmap::Error on a taken endpoint (a live
  /// unix socket) or bind failure. Must precede run().
  void bind();

  /// The bound endpoint — for tcp port 0 this carries the real port.
  const Endpoint& endpoint() const;

  /// The IO loop: serves until a drain completes. Returns 0 for a clean
  /// drain, 1 when jobs had to be abandoned at the hard deadline.
  int run();

  /// Triggers a graceful drain (grace_ms < 0: the configured default).
  /// Safe from any thread and from signal handlers.
  void request_drain(double grace_ms = -1.0);

  /// Snapshot of the embedded service's admission/lifecycle counters.
  ServiceStats service_stats() const { return service_->stats(); }

  // ---- SessionHost (IO thread only) ----
  SubmitOutcome submit(std::uint64_t session,
                       const WireSubmit& request) override;
  std::optional<Json> job_status(std::uint64_t job) override;
  bool cancel_job(std::uint64_t job) override;
  bool subscribe(std::uint64_t session, std::uint64_t job) override;
  void begin_drain(double grace_ms) override;
  bool draining() const override;
  Json server_info() const override;

 private:
  /// One accepted connection: socket, protocol FSM, buffers.
  struct Conn {
    Socket socket;
    Session session;
    FrameReader reader;
    std::string outbuf;

    Conn(Socket s, std::uint64_t id, SessionHost& host, SessionConfig config,
         std::size_t max_frame)
        : socket(std::move(s)),
          session(id, host, config),
          reader(max_frame) {}
  };

  /// One submitted job as the wire sees it (IO thread only).
  struct JobEntry {
    MappingService::JobHandle handle;
    std::string priority_class;
    bool want_mapping = false;
    bool terminal = false;
    std::set<std::uint64_t> subscribers;  ///< session ids
  };

  /// Worker-to-IO-thread notification (see the header comment).
  struct Event {
    enum class Kind { kIncumbent, kTerminal, kReplayDone } kind;
    std::uint64_t job = 0;
    IncumbentRecord incumbent;   ///< kIncumbent
    std::uint64_t session = 0;   ///< kReplayDone target
  };

  void wake() const;
  void push_event(Event event);
  void process_events();
  void handle_event(const Event& event);

  void accept_clients(double now);
  void conn_readable(std::uint64_t id, Conn& conn, double now);
  /// Appends lines and flushes; false when the connection died.
  bool enqueue_lines(Conn& conn, const std::vector<std::string>& lines);
  bool flush_outbuf(Conn& conn);
  void reap_connections();

  void start_drain(double now);
  /// Graduated per-class admission bound (see the header comment).
  std::size_t class_capacity(int priority) const;

  std::shared_ptr<const TaskGraph> resolve_graph(const WireSubmit& request);
  std::shared_ptr<const Platform> resolve_platform(const WireSubmit& request);
  Json status_body(std::uint64_t id, const JobEntry& entry) const;

  void logf(const char* fmt, ...) const;

  DaemonOptions options_;
  std::unique_ptr<MappingService> service_;
  std::optional<ListenSocket> listener_;
  int wake_read_ = -1;
  int wake_write_ = -1;

  WallTimer clock_;  ///< the IO loop's monotonic time base (seconds)

  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_session_id_ = 1;

  std::map<std::uint64_t, JobEntry> jobs_;
  std::deque<std::uint64_t> completed_order_;  ///< retention FIFO
  std::uint64_t next_job_id_ = 1;
  std::size_t outstanding_ = 0;  ///< submitted, not yet terminal

  std::mutex events_mutex_;
  std::deque<Event> events_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<double> requested_grace_ms_{-1.0};
  bool draining_ = false;
  bool cancelled_in_flight_ = false;
  double grace_deadline_s_ = 0.0;
  double hard_deadline_s_ = 0.0;

  std::shared_ptr<const Platform> reference_platform_;
};

}  // namespace spmap
