#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace spmap {
namespace {

// ---- Flags ----

Flags make_flags(std::vector<const char*> args,
                 std::vector<std::string> known) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()), args.data(), known);
}

TEST(Flags, EqualsSyntax) {
  const auto f = make_flags({"--seed=42"}, {"seed"});
  EXPECT_EQ(f.get_int("seed", 0), 42);
}

TEST(Flags, SpaceSyntax) {
  const auto f = make_flags({"--seed", "7"}, {"seed"});
  EXPECT_EQ(f.get_int("seed", 0), 7);
}

TEST(Flags, BareBoolean) {
  const auto f = make_flags({"--verbose"}, {"verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, Fallbacks) {
  const auto f = make_flags({}, {"seed"});
  EXPECT_EQ(f.get_int("seed", 123), 123);
  EXPECT_DOUBLE_EQ(f.get_double("seed", 1.5), 1.5);
  EXPECT_EQ(f.get("seed", "x"), "x");
}

TEST(Flags, UnknownFlagThrows) {
  EXPECT_THROW(make_flags({"--oops=1"}, {"seed"}), Error);
}

TEST(Flags, BadIntThrows) {
  const auto f = make_flags({"--seed=abc"}, {"seed"});
  EXPECT_THROW(f.get_int("seed", 0), Error);
}

TEST(Flags, IntList) {
  const auto f = make_flags({"--sizes=5,10,15"}, {"sizes"});
  const auto v = f.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[2], 15);
}

TEST(Flags, PositionalArgumentThrows) {
  EXPECT_THROW(make_flags({"stray"}, {}), Error);
}

// ---- Table ----

TEST(Table, TsvOutput) {
  Table t({"n", "value"});
  t.add_row({"1", "0.5"});
  t.add_row(2.0, {0.25}, 2);
  std::ostringstream os;
  t.write_tsv(os);
  EXPECT_EQ(os.str(), "n\tvalue\n1\t0.5\n2\t0.25\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, AlignedContainsAllCells) {
  Table t({"alg", "time"});
  t.add_row({"HEFT", "10"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("HEFT"), std::string::npos);
  EXPECT_NE(s.find("time"), std::string::npos);
}

TEST(FormatHelpers, Duration) {
  EXPECT_EQ(format_duration(0.5e-3), "500.00 us");
  EXPECT_EQ(format_duration(0.25), "250.00 ms");
  EXPECT_EQ(format_duration(2.0), "2.00 s");
}

// ---- Timer ----

TEST(Timer, MonotoneNonNegative) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

TEST(Deadline, NoBudgetNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e100);
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Busy-wait a few microseconds.
  WallTimer t;
  while (t.seconds() < 1e-5) {
  }
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining(), 0.0);
}

}  // namespace
}  // namespace spmap
