#pragma once
/// \file io.hpp
/// Task-graph serialization: Graphviz DOT export (for inspection) and a
/// JSON round-trip format carrying the graph, edge payloads and task
/// attributes.

#include <string>

#include "graph/dag.hpp"
#include "graph/task_attrs.hpp"

namespace spmap {

/// A task graph bundled with its model attributes.
struct TaskGraph {
  Dag dag;
  TaskAttrs attrs;
};

/// Graphviz DOT rendering; node labels fall back to ids.
std::string to_dot(const Dag& dag);

/// JSON serialization of a task graph (schema: {nodes:[{label, complexity,
/// parallelizability, streamability, area}], edges:[{src, dst, data_mb}]}).
std::string to_json(const Dag& dag, const TaskAttrs& attrs);

/// Parses the format produced by to_json(). Throws spmap::Error on schema
/// violations (missing keys, ids out of range, cycles).
TaskGraph task_graph_from_json(const std::string& text);

}  // namespace spmap
