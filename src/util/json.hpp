#pragma once
/// \file json.hpp
/// Minimal JSON value type with parser and serializer.
///
/// Used by the graph / workflow (de)serialization layer. Supports the full
/// JSON data model (null, bool, number, string, array, object) with ordered
/// object keys for deterministic output. Not a general-purpose library:
/// numbers are doubles, strings must be UTF-8, and parse errors throw
/// spmap::Error with a byte offset.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace spmap {

/// A JSON document node.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;  // ordered

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object access; throws spmap::Error if absent or not an object.
  const Json& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;
  /// Object insertion (appends or overwrites).
  void set(const std::string& key, Json value);
  /// Array append.
  void push_back(Json value);

  /// Serializes; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parses a JSON document. Throws spmap::Error on malformed input.
  static Json parse(const std::string& text);

  /// Schema guard for the declarative formats (platform / workload /
  /// scenario files): throws spmap::Error if this object contains a key not
  /// in `accepted`, naming the offender and listing what is accepted —
  /// mirroring the MapperRegistry option diagnostics, so typos in committed
  /// experiment files fail loudly instead of being ignored. `context`
  /// prefixes the message (e.g. "platform device").
  void require_keys(const std::string& context,
                    const std::vector<std::string>& accepted) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace spmap
