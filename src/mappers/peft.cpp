#include "mappers/peft.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "sched/timeline.hpp"

namespace spmap {

std::vector<double> peft_oct(const CostModel& cost) {
  const Dag& dag = cost.dag();
  const std::size_t n = dag.node_count();
  const std::size_t m = cost.platform().device_count();
  std::vector<double> oct(n * m, 0.0);

  const auto topo = topological_order(dag);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    for (std::size_t d = 0; d < m; ++d) {
      double worst_succ = 0.0;
      for (const EdgeId e : dag.out_edges(v)) {
        const NodeId w = dag.dst(e);
        double best_dev = kInfeasible;
        for (std::size_t dw = 0; dw < m; ++dw) {
          const double comm =
              (dw == d) ? 0.0 : cost.mean_transfer_time(e);
          best_dev = std::min(best_dev, oct[w.v * m + dw] +
                                            cost.exec_time(w, DeviceId(dw)) +
                                            comm);
        }
        worst_succ = std::max(worst_succ, best_dev);
      }
      oct[v.v * m + d] = worst_succ;
    }
  }
  return oct;
}

MapReport PeftMapper::map(const Evaluator& eval, const MapRequest& request) {
  RunControl control(request);
  const CostModel& cost = eval.cost();
  const Dag& dag = cost.dag();
  const Platform& platform = cost.platform();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  const auto oct = peft_oct(cost);
  // rank_oct = device-averaged OCT.
  std::vector<double> rank(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < m; ++d) rank[i] += oct[i * m + d];
    rank[i] /= static_cast<double>(m);
  }

  const auto topo = topological_order(dag);
  std::vector<std::size_t> topo_pos(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[topo[i].v] = i;

  // PEFT processes ready tasks by maximum rank_oct (list scheduling with a
  // ready queue rather than a static order, per the original paper).
  std::vector<std::size_t> pending(n, 0);
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    pending[i] = dag.in_degree(NodeId(i));
    if (pending[i] == 0) ready.push_back(NodeId(i));
  }

  std::vector<std::size_t> slot_offset(m + 1, 0);
  for (std::size_t d = 0; d < m; ++d) {
    slot_offset[d + 1] =
        slot_offset[d] +
        std::max<std::size_t>(1, platform.device(DeviceId(d)).slots);
  }
  std::vector<DeviceTimeline> timelines(slot_offset.back());
  std::vector<double> finish(n, 0.0);
  Mapping mapping(n, platform.default_device());
  std::vector<double> fpga_area_used(m, 0.0);

  // One-shot list scheduler: one "iteration" places one ready task. A
  // truncated run leaves the rest on the default device (valid mapping).
  std::size_t scheduled = 0;
  while (!ready.empty()) {
    if (control.should_stop(scheduled, 0)) break;
    // Highest-rank ready task (ties: earliest topological position).
    std::size_t pick = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const NodeId a = ready[k];
      const NodeId b = ready[pick];
      if (rank[a.v] > rank[b.v] ||
          (rank[a.v] == rank[b.v] && topo_pos[a.v] < topo_pos[b.v])) {
        pick = k;
      }
    }
    const NodeId v = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();

    DeviceId best_dev = platform.default_device();
    double best_oeft = kInfeasible;
    double best_start = 0.0;
    double best_eft = 0.0;
    std::size_t best_slot = 0;
    for (std::size_t d = 0; d < m; ++d) {
      const DeviceId dev(d);
      const Device& device = platform.device(dev);
      if (device.is_fpga() && fpga_area_used[d] + cost.area(v) >
                                  device.area_budget) {
        continue;
      }
      double est = 0.0;
      for (const EdgeId e : dag.in_edges(v)) {
        const NodeId u = dag.src(e);
        est = std::max(est,
                       finish[u.v] + cost.transfer_time(e, mapping[u], dev));
      }
      const double exec = cost.exec_time(v, dev);
      for (std::size_t s = slot_offset[d]; s < slot_offset[d + 1]; ++s) {
        const double start = timelines[s].earliest_start(est, exec);
        const double eft = start + exec;
        // PEFT's lookahead: optimistic EFT = EFT + OCT.
        const double oeft = eft + oct[v.v * m + d];
        if (oeft < best_oeft) {
          best_oeft = oeft;
          best_dev = dev;
          best_start = start;
          best_eft = eft;
          best_slot = s;
        }
      }
    }
    mapping[v] = best_dev;
    finish[v.v] = best_eft;
    timelines[best_slot].reserve(best_start, best_eft - best_start);
    if (platform.device(best_dev).is_fpga()) {
      fpga_area_used[best_dev.v] += cost.area(v);
    }
    ++scheduled;
    for (const EdgeId e : dag.out_edges(v)) {
      if (--pending[dag.dst(e).v] == 0) ready.push_back(dag.dst(e));
    }
  }
  require(scheduled == n || control.stopped(),
          "PEFT: scheduling did not cover all tasks");

  MapReport report;
  const std::size_t before = eval.evaluation_count();
  report.predicted_makespan = eval.evaluate(mapping);
  report.evaluations = eval.evaluation_count() - before;
  report.mapping = std::move(mapping);
  report.iterations = scheduled;
  control.record_incumbent(report.predicted_makespan, scheduled);
  control.finalize(report);
  return report;
}

void detail::register_peft_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "peft";
  entry.display_name = "PEFT";
  entry.description =
      "Predict Earliest Finish Time (Arabnejad/Barbosa): optimistic cost "
      "table adds one step of global lookahead to HEFT's device choice";
  entry.factory = [](const MapperContext&) {
    return std::make_unique<PeftMapper>();
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
