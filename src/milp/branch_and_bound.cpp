#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>

#include "util/timer.hpp"

namespace spmap {

namespace {

class Search {
 public:
  Search(const MilpModel& model, const MipParams& params)
      : model_(model), params_(params), deadline_(params.time_limit_s) {}

  MipResult run(const std::vector<double>* warm_start) {
    if (warm_start && model_.is_feasible(*warm_start, params_.int_tol)) {
      best_x_ = *warm_start;
      best_obj_ = model_.objective_value(*warm_start);
      have_incumbent_ = true;
    }
    std::vector<double> lb(model_.var_count());
    std::vector<double> ub(model_.var_count());
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      lb[v] = model_.lower_bound(static_cast<int>(v));
      ub[v] = model_.upper_bound(static_cast<int>(v));
    }
    complete_ = dfs(lb, ub, 0);

    MipResult result;
    result.nodes = nodes_;
    result.timed_out = interrupted_;
    result.x = best_x_;
    result.objective = best_obj_;
    if (have_incumbent_) {
      result.status = complete_ ? MipStatus::Optimal : MipStatus::Feasible;
    } else {
      result.status = complete_ ? MipStatus::Infeasible : MipStatus::NoSolution;
    }
    return result;
  }

 private:
  /// Returns true if the subtree was fully explored (false on interrupt).
  bool dfs(std::vector<double>& lb, std::vector<double>& ub, int depth) {
    if (deadline_.expired() || nodes_ >= params_.max_nodes || depth > 4096 ||
        (params_.interrupt && params_.interrupt())) {
      interrupted_ = true;
      return false;
    }
    ++nodes_;

    const LpResult lp = solve_lp(model_, lb, ub);
    if (lp.status == LpStatus::Infeasible) return true;
    if (lp.status != LpStatus::Optimal) {
      // No usable bound (unbounded relaxation or iteration limit): branch
      // blindly on the first unfixed integer variable.
      const int v = first_unfixed_int(lb, ub);
      if (v < 0) return true;  // nothing to branch on; give up on node
      return branch(lb, ub, v, 0.5 * (lb[v] + ub[v]), depth);
    }

    // Bound: prune if the relaxation cannot beat the incumbent.
    if (have_incumbent_ && lp.objective >= best_obj_ - params_.gap_abs) {
      return true;
    }

    // Incumbent heuristic: round integers to nearest and test feasibility.
    try_rounding(lp.x);

    // Most fractional integer variable.
    int branch_var = -1;
    double branch_val = 0.0;
    double best_frac = params_.int_tol;
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      if (!model_.is_integral_kind(static_cast<int>(v))) continue;
      const double x = lp.x[v];
      const double frac = std::abs(x - std::nearbyint(x));
      if (frac > best_frac) {
        best_frac = frac;
        branch_var = static_cast<int>(v);
        branch_val = x;
      }
    }
    if (branch_var < 0) {
      // Integral LP optimum: new incumbent.
      update_incumbent(lp.x, lp.objective);
      return true;
    }
    return branch(lb, ub, branch_var, branch_val, depth);
  }

  bool branch(std::vector<double>& lb, std::vector<double>& ub, int v,
              double value, int depth) {
    const double floor_v = std::floor(value);
    const double old_lb = lb[v];
    const double old_ub = ub[v];
    // Dive first towards the side the LP value is closer to.
    const bool down_first = (value - floor_v) <= 0.5;
    bool complete = true;
    for (int side = 0; side < 2; ++side) {
      const bool down = (side == 0) == down_first;
      if (down) {
        ub[v] = std::min(old_ub, floor_v);
        if (lb[v] <= ub[v]) complete &= dfs(lb, ub, depth + 1);
        ub[v] = old_ub;
      } else {
        lb[v] = std::max(old_lb, floor_v + 1.0);
        if (lb[v] <= ub[v]) complete &= dfs(lb, ub, depth + 1);
        lb[v] = old_lb;
      }
      if (interrupted_) return false;
    }
    return complete;
  }

  int first_unfixed_int(const std::vector<double>& lb,
                        const std::vector<double>& ub) const {
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      if (model_.is_integral_kind(static_cast<int>(v)) &&
          ub[v] - lb[v] > params_.int_tol) {
        return static_cast<int>(v);
      }
    }
    return -1;
  }

  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    bool any_fractional = false;
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      if (model_.is_integral_kind(static_cast<int>(v))) {
        const double r = std::nearbyint(rounded[v]);
        if (std::abs(r - rounded[v]) > params_.int_tol) any_fractional = true;
        rounded[v] = r;
      }
    }
    if (!any_fractional) return;  // integral solutions handled by caller
    if (model_.is_feasible(rounded, 1e-6)) {
      update_incumbent(rounded, model_.objective_value(rounded));
    }
  }

  void update_incumbent(const std::vector<double>& x, double obj) {
    if (!have_incumbent_ || obj < best_obj_) {
      best_x_ = x;
      best_obj_ = obj;
      have_incumbent_ = true;
    }
  }

  const MilpModel& model_;
  const MipParams& params_;
  Deadline deadline_;
  std::vector<double> best_x_;
  double best_obj_ = 0.0;
  bool have_incumbent_ = false;
  bool interrupted_ = false;
  bool complete_ = false;
  std::size_t nodes_ = 0;
};

}  // namespace

MipResult MipSolver::solve(const MilpModel& model,
                           const std::vector<double>* warm_start) const {
  Search search(model, params_);
  return search.run(warm_start);
}

}  // namespace spmap
