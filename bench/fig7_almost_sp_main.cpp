/// Fig. 7 — almost series-parallel graphs: 100-task random SP graphs with
/// 0..200 extra conflicting edges.
///
/// Paper shape to reproduce: quality of all algorithms degrades slightly
/// with added edges; the SP decomposition converges towards the single-node
/// decomposition (its trees fragment towards single edges); NSGA-II ends up
/// close to the decomposition heuristics; the SP mapper's execution time
/// grows with the number of conflicting edges (about +30 % over SingleNode
/// at 200 added edges) while SingleNode is unaffected.
///
/// This binary is a thin wrapper over the committed scenario file
/// `scenarios/fig7_almost_sp.json` — the experiment itself (platform,
/// workload, mapper line-up, sweep) lives there, so `spmap_cli sweep`
/// reproduces it identically. Flags override the scenario for quick runs.
///
/// Flags: --scenario FILE --edges=0,20,... --tasks N --graphs N --seed S
///        --generations N --threads N --out results.json

#include <cstdio>
#include <iostream>

#include "bench/scenario.hpp"
#include "bench/scenario_runner.hpp"
#include "util/flags.hpp"

using namespace spmap;

namespace {

// Historic convenience flag: rewrite only the generations= option of the
// NSGA-II line-up entries, leaving their other options (pop, threads, ...)
// intact.
void override_nsga_generations(Scenario& scenario, long generations) {
  const std::string key = "generations=";
  for (ScenarioMapper& m : scenario.mappers) {
    if (m.spec.rfind("nsga", 0) != 0) continue;
    const std::size_t pos = m.spec.find(key);
    if (pos == std::string::npos) {
      m.spec += m.spec.find(':') == std::string::npos ? ':' : ',';
      m.spec += key + std::to_string(generations);
    } else {
      const std::size_t value = pos + key.size();
      const std::size_t end = m.spec.find(',', value);
      m.spec.replace(value,
                     (end == std::string::npos ? m.spec.size() : end) - value,
                     std::to_string(generations));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"scenario", "edges", "tasks", "graphs", "seed",
                     "generations", "threads", "out"});
  try {
    Scenario scenario = load_scenario_file(
        flags.get("scenario",
                  std::string(SPMAP_SCENARIO_DIR) + "/fig7_almost_sp.json"));
    if (flags.has("edges")) {
      require(scenario.sweep.enabled(),
              "--edges: scenario has no sweep axis to override");
      scenario.sweep.values = flags.get_int_list("edges", {});
      require(!scenario.sweep.values.empty(),
              "--edges: need at least one value");
    }
    if (flags.has("tasks")) {
      const auto tasks = flags.get_int("tasks", 100);
      require(tasks >= 2, "--tasks must be >= 2");
      scenario.workload.tasks = static_cast<std::size_t>(tasks);
    }
    if (flags.has("graphs")) {
      const auto graphs = flags.get_int("graphs", 5);
      require(graphs >= 1, "--graphs must be >= 1");
      scenario.repetitions = static_cast<std::size_t>(graphs);
    }
    if (flags.has("seed")) {
      scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
    }
    if (flags.has("generations")) {
      const auto generations = flags.get_int("generations", 200);
      require(generations >= 1, "--generations must be >= 1");
      override_nsga_generations(scenario, generations);
    }
    SweepRunOptions options;
    const auto threads = flags.get_int("threads", 1);
    require(threads >= 1, "--threads must be >= 1");
    options.threads = static_cast<std::size_t>(threads);

    run_report_write(scenario, options, flags.get("out", ""), std::cout);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "bench_fig7_almost_sp: %s\n", ex.what());
    return 1;
  }
  return 0;
}
