#pragma once
/// \file failpoint.hpp
/// Named fault-injection points for robustness testing.
///
/// A failpoint is a named hook compiled into a production code path
/// (daemon IO loop, journal writes, worker completion) that does nothing
/// until *armed*. Arming happens at process start from the
/// `SPMAP_FAILPOINTS` environment variable or a `--failpoints` flag, with
/// the grammar
///
///     SPEC    := ENTRY (',' ENTRY)*
///     ENTRY   := NAME '=' ACTION ['@' SKIP ['+' COUNT]]
///     ACTION  := 'error' | 'crash' | 'delay:' MILLIS
///
/// e.g. `journal.append=error@2+1` makes the *third* hit of the
/// `journal.append` failpoint fail (skip 2, fire 1), and
/// `daemon.terminal=crash` kills the process (`_exit`, no cleanup — the
/// closest portable stand-in for SIGKILL) on the first terminal-event
/// write. `delay:50` sleeps 50 ms on every hit, for shaking out timeouts
/// and races.
///
/// Call sites use the free helpers:
///
///     if (failpoint("journal.append")) throw Error("injected failure");
///
/// `failpoint()` evaluates the hook: it sleeps through a `delay` action,
/// `_exit(86)`s on `crash`, and returns true when an `error` action fired
/// (the caller decides what "failing" means locally). Unarmed processes
/// pay one relaxed atomic load per hit — effectively free.
///
/// ## Thread-safety
///
/// Arming and hitting are fully thread-safe (one registry mutex on the
/// armed path; workers and the IO thread hit concurrently).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spmap {

/// Exit code of a `crash` action — distinguishable from every exit code
/// of the CLI contract (tools/exit_codes.hpp) and from clean SIGKILL, so
/// supervisors can tell injected crashes apart.
inline constexpr int kFailpointCrashExit = 86;

/// One armed failpoint: what to do, and in which hit window.
struct FailpointSpec {
  enum class Action { kError, kCrash, kDelay };
  Action action = Action::kError;
  double delay_ms = 0.0;      ///< kDelay: sleep per firing hit
  std::uint64_t skip = 0;     ///< hits ignored before the first firing
  std::uint64_t count = ~0ULL;  ///< firing hits before disarming
};

/// The process-wide registry of armed failpoints.
class Failpoints {
 public:
  static Failpoints& instance();

  /// Parses and installs a spec string (additive; later entries replace
  /// earlier ones of the same name). Throws spmap::Error on bad grammar.
  void arm(const std::string& spec);

  /// Arms from `SPMAP_FAILPOINTS` when the variable is set and non-empty.
  void arm_from_env();

  /// Disarms everything (tests).
  void clear();

  /// Evaluates one hit of `name`: sleeps/crashes per the armed action and
  /// returns true iff an `error` action fired. False when unarmed.
  bool hit(const char* name);

  /// Hits seen by `name` since arming (0 when unarmed) — test visibility.
  std::uint64_t hits(const std::string& name) const;

  /// True when any failpoint is armed (the fast-path gate).
  bool armed() const;

  /// Parses one spec string without installing it (exposed for tests).
  static std::vector<std::pair<std::string, FailpointSpec>> parse(
      const std::string& spec);

 private:
  Failpoints() = default;
  struct Armed {
    FailpointSpec spec;
    std::uint64_t hits = 0;
  };
  // Pimpl-free: the mutex lives in the .cpp as a function-local static
  // together with the map, keeping this header dependency-light.
};

/// Evaluates the named failpoint (see the file comment). Returns true
/// when the caller should fail.
bool failpoint(const char* name);

}  // namespace spmap
