#pragma once
/// \file scenario_runner.hpp
/// Executes a parsed Scenario and emits a `spmap-sweep-results/1` document.
///
/// The runner follows the paper's experiment protocol (Section IV-A),
/// exactly as the per-figure bench binaries always did:
///  * mappers run against an *inner* evaluator (breadth-first schedule
///    only — the linear-time cost function used during mapping);
///  * reported makespans use the *reporting* evaluator: minimum over a
///    breadth-first schedule and `reporting_orders` random schedules;
///  * quality is the positive relative improvement over the all-CPU
///    baseline (deteriorations count as zero);
///  * mapper execution time is wall-clock and includes construction (e.g.
///    the SP decomposition), matching the paper's end-to-end times.
///
/// The runner drives the async job layer (serve/mapping_service.hpp):
/// every (repetition, mapper) pair is one MappingService job. Graphs and
/// per-job construction rng streams are derived *serially* up front and
/// submitted FIFO, results are collected in submission order, and each job
/// builds its own evaluators — so every quality/makespan number is
/// **bit-identical for every worker count**, including the serial path the
/// per-figure binaries always produced. Only the wall-clock
/// `mapper_seconds_*` fields vary run to run (and are noisier when workers
/// contend for cores).
///
/// ## Thread-safety
///
/// `run_scenario` is internally parallel but a single-caller API: call it
/// from one thread at a time. `print_sweep_tables` is a pure formatter.

#include <iosfwd>

#include "bench/scenario.hpp"
#include "util/json.hpp"

namespace spmap {

struct SweepRunOptions {
  /// MappingService workers running the per-(repetition, mapper) jobs
  /// (1 = serial; results are identical either way).
  std::size_t threads = 1;
  /// Per-point progress lines on stderr.
  bool progress = true;
  /// Per-job lifecycle lines on stderr ("[serve] job 3 done: ..."), the
  /// `spmap_cli serve` view of the run.
  bool log_jobs = false;
  /// Result-cache entry capacity for the run's MappingService (0 = cache
  /// off, the default — so the default results document is byte-stable).
  /// When on, flat `cache_*` counters are appended to the document; every
  /// job pins its construction rng so all jobs are cacheable, but within
  /// one run every key is distinct — hits only appear across repeated
  /// identities (e.g. re-submitted scenarios sharing a cache).
  std::size_t cache_entries = 0;
  /// Result-cache byte budget (only meaningful with cache_entries > 0;
  /// 0 leaves the ResultCacheOptions default).
  std::size_t cache_bytes = 0;
};

/// Runs the scenario and returns the results document
/// (`"schema": "spmap-sweep-results/1"`; see docs/FORMATS.md):
///   {
///     "schema": "spmap-sweep-results/1",
///     "scenario": ..., "platform": ..., "workload": {...},
///     "seed": ..., "repetitions": ..., "reporting_orders": ...,
///     "threads": ...,
///     "sweep_parameter": "tasks",        // only when sweeping
///     "results": [
///       {"sweep_value": 5,               // only when sweeping
///        "mappers": [
///          {"name": "HEFT", "spec": "heft",
///           "improvement_mean": ..., "improvement_min": ...,
///           "improvement_max": ..., "makespan_mean": ...,
///           "baseline_mean": ...,
///           "mapper_seconds_mean": ..., "mapper_seconds_total": ...},
///          ...]},
///       ...]
///   }
Json run_scenario(const Scenario& scenario,
                  const SweepRunOptions& options = {});

/// Prints the classic bench output from a results document: one TSV block
/// plus aligned table per metric (improvement, execution time), in the
/// scenario's mapper order — the format the `bench_fig*` binaries have
/// always emitted.
void print_sweep_tables(const Json& results, std::ostream& os);

/// The whole body of a ported `bench_fig*` binary after flag overrides:
/// runs the scenario, prints the classic tables to `os`, and when
/// `out_path` is non-empty writes the results document there (noting the
/// path on stderr). Returns the results document.
Json run_report_write(const Scenario& scenario,
                      const SweepRunOptions& options,
                      const std::string& out_path, std::ostream& os);

}  // namespace spmap
