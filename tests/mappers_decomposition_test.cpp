#include "mappers/decomposition.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/cpu_only.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

TEST(CpuOnlyMapper, MatchesDefaultMapping) {
  const Dag d = chain_dag(4);
  const auto attrs = serial_streamable_attrs(4);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  CpuOnlyMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_EQ(r.mapping, eval.default_mapping());
  EXPECT_NEAR(r.predicted_makespan, 4.0, 1e-9);
}

TEST(DecompositionMapper, SingleNodeAcceleratesChainWithCheapTransfers) {
  // Transfers (0.1 s) are far below the per-task gain (0.9 s): even the
  // single-node decomposition migrates everything to the FPGA.
  const Dag d = chain_dag(5);
  const auto attrs = serial_streamable_attrs(5);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  auto mapper = make_single_node_mapper(d, /*first_fit=*/false);
  const MapperResult r = mapper->map(eval);
  EXPECT_LT(r.predicted_makespan, eval.default_mapping_makespan());
  EXPECT_GT(r.iterations, 0u);
}

TEST(DecompositionMapper, SingleNodeStuckInLocalMinimumOnCostlyTransfers) {
  // Section III-B's predicted failure mode: with expensive transfers
  // (1 s each way at 0.1 GB/s), moving any single task — even a chain
  // endpoint paying only one transfer — costs more than the 0.9 s it
  // gains, so single-node decomposition stays at the CPU mapping...
  const Dag d = chain_dag(6);
  const auto attrs = serial_streamable_attrs(6);
  const Platform p = cpu_fpga_platform(/*bandwidth_gbps=*/0.1);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const double base = eval.default_mapping_makespan();

  auto sn = make_single_node_mapper(d, false);
  const MapperResult rs = sn->map(eval);
  EXPECT_NEAR(rs.predicted_makespan, base, 1e-9);

  // ...while the series-parallel decomposition can move the whole chain at
  // once, unlocking FPGA streaming (Section III-C).
  Rng rng(1);
  auto sp = make_series_parallel_mapper(d, rng, false);
  const MapperResult rp = sp->map(eval);
  EXPECT_LT(rp.predicted_makespan, 0.5 * base);
}

TEST(DecompositionMapper, NeverWorseThanDefaultMapping) {
  Rng rng(7);
  for (int rep = 0; rep < 5; ++rep) {
    const Dag d = generate_sp_dag(30, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost);
    const double base = eval.default_mapping_makespan();
    for (const bool first_fit : {false, true}) {
      auto sn = make_single_node_mapper(d, first_fit);
      EXPECT_LE(sn->map(eval).predicted_makespan, base + 1e-9);
      auto sp = make_series_parallel_mapper(d, rng, first_fit);
      EXPECT_LE(sp->map(eval).predicted_makespan, base + 1e-9);
    }
  }
}

TEST(DecompositionMapper, FirstFitQualityCloseToBasic) {
  // Paper Section IV-B: the difference between the basic principle and the
  // FirstFit heuristic is almost negligible; FirstFit needs fewer
  // evaluations.
  Rng rng(11);
  double basic_total = 0.0;
  double ff_total = 0.0;
  std::size_t basic_evals = 0;
  std::size_t ff_evals = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const Dag d = generate_sp_dag(40, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost);
    auto basic = make_series_parallel_mapper(d, rng, false);
    Rng rng2 = rng;  // same decomposition stream is not required; sets differ
    const MapperResult rb = basic->map(eval);
    auto ff = make_series_parallel_mapper(d, rng2, true);
    const MapperResult rf = ff->map(eval);
    basic_total += rb.predicted_makespan;
    ff_total += rf.predicted_makespan;
    basic_evals += rb.evaluations;
    ff_evals += rf.evaluations;
  }
  // Within 15 % of each other on aggregate.
  EXPECT_NEAR(ff_total / basic_total, 1.0, 0.15);
  // And distinctly cheaper in model evaluations.
  EXPECT_LT(ff_evals, basic_evals);
}

TEST(DecompositionMapper, RespectsFpgaAreaBudget) {
  // Budget fits only two tasks; mapping must stay feasible even though the
  // FPGA is much faster.
  const Dag d = chain_dag(6);
  const auto attrs = serial_streamable_attrs(6);
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/25.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  for (const bool first_fit : {false, true}) {
    auto sn = make_single_node_mapper(d, first_fit);
    const MapperResult r = sn->map(eval);
    EXPECT_TRUE(cost.area_feasible(r.mapping));
    EXPECT_LT(r.predicted_makespan, kInfeasible);
  }
}

TEST(DecompositionMapper, GammaVariantsAllValid) {
  const Dag d = chain_dag(8);
  const auto attrs = serial_streamable_attrs(8);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const double base = eval.default_mapping_makespan();
  for (const double gamma : {1.0, 1.5, 2.0, 4.0}) {
    DecompositionParams params;
    params.variant = DecompositionVariant::Threshold;
    params.gamma = gamma;
    DecompositionMapper mapper("gamma", single_node_subgraphs(8), params);
    const MapperResult r = mapper.map(eval);
    EXPECT_LE(r.predicted_makespan, base + 1e-9) << "gamma=" << gamma;
    EXPECT_TRUE(cost.area_feasible(r.mapping));
  }
}

TEST(DecompositionMapper, IterationCapRespected) {
  const Dag d = chain_dag(10);
  const auto attrs = serial_streamable_attrs(10);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  DecompositionParams params;
  params.max_iterations = 2;
  DecompositionMapper mapper("capped", single_node_subgraphs(10), params);
  const MapperResult r = mapper.map(eval);
  EXPECT_LE(r.iterations, 2u);
}

TEST(DecompositionMapper, EmptySubgraphSetRejected) {
  EXPECT_THROW(DecompositionMapper("bad", SubgraphSet{}, {}), Error);
}

TEST(DecompositionMapper, PredictedMakespanMatchesEvaluator) {
  Rng rng(13);
  const Dag d = generate_sp_dag(25, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  auto sp = make_series_parallel_mapper(d, rng, true);
  const MapperResult r = sp->map(eval);
  EXPECT_NEAR(r.predicted_makespan, eval.evaluate(r.mapping), 1e-12);
}

}  // namespace
}  // namespace spmap
