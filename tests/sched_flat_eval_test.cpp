/// Equivalence and determinism suite for the flat evaluation core:
///  * the flat Evaluator must agree with the retained naive
///    ReferenceEvaluator on random SP, almost-SP and workflow DAGs under
///    random mappings and every prepared schedule order;
///  * Evaluator::evaluate_batch must be bit-identical across thread counts
///    (and to the serial path);
///  * the FlatGraph CSR view must mirror the Dag adjacency exactly.

#include <gtest/gtest.h>

#include "graph/flat_graph.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "sched/reference_evaluator.hpp"
#include "util/thread_pool.hpp"
#include "workflows/workflows.hpp"

namespace spmap {
namespace {

/// Flat evaluator and naive reference must agree on every prepared order
/// and on the min-over-orders makespan, for several random mappings.
/// Exact equality, not a tolerance: both paths are written to perform the
/// same floating-point operations in the same order (the documented
/// contract of reference_evaluator.hpp), which is well inside the issue's
/// 1e-12 requirement.
void expect_flat_matches_reference(const Dag& dag, const TaskAttrs& attrs,
                                   Rng& rng) {
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const EvalParams params{.random_orders = 10, .seed = 77};
  const Evaluator flat(cost, params);
  ReferenceEvaluator reference(cost, params);
  ASSERT_EQ(flat.orders().size(), reference.orders().size());

  for (int rep = 0; rep < 5; ++rep) {
    const Mapping m = random_feasible_mapping(cost, rng);
    const double a = flat.evaluate(m);
    const double b = reference.evaluate(m);
    ASSERT_LT(a, kInfeasible);
    EXPECT_EQ(a, b);
    for (std::size_t o = 0; o < flat.orders().size(); ++o) {
      EXPECT_EQ(flat.evaluate_order(m, flat.orders()[o]),
                reference.evaluate_order(m, reference.orders()[o]));
    }
  }
}

TEST(FlatEvalEquivalence, RandomSpDags) {
  Rng rng(101);
  for (const std::size_t n : {2u, 9u, 40u, 150u}) {
    const Dag dag = generate_sp_dag(n, rng);
    const TaskAttrs attrs = random_task_attrs(dag, rng);
    expect_flat_matches_reference(dag, attrs, rng);
  }
}

TEST(FlatEvalEquivalence, AlmostSpDags) {
  Rng rng(102);
  for (const std::size_t n : {12u, 60u, 200u}) {
    const Dag base = generate_sp_dag(n, rng);
    const Dag dag = add_random_edges(base, n / 2, rng);
    const TaskAttrs attrs = random_task_attrs(dag, rng);
    expect_flat_matches_reference(dag, attrs, rng);
  }
}

TEST(FlatEvalEquivalence, WorkflowDags) {
  Rng rng(103);
  for (const WorkflowFamily family : all_workflow_families()) {
    WorkflowInstance instance = generate_workflow(family, 8, rng);
    expect_flat_matches_reference(instance.dag, instance.attrs, rng);
  }
}

TEST(FlatEvalEquivalence, InfeasibleMappingAgreed) {
  // Saturate the FPGA so both paths must report +infinity.
  Rng rng(104);
  const Dag dag = generate_sp_dag(30, rng);
  TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  double budget = 0.0;
  for (const DeviceId f : platform.fpga_devices()) {
    budget = std::max(budget, platform.device(f).area_budget);
  }
  for (auto& a : attrs.area) a = budget;  // any two FPGA tasks overflow
  const CostModel cost(dag, attrs, platform);
  const Evaluator flat(cost);
  ReferenceEvaluator reference(cost);
  Mapping m(dag.node_count(), platform.fpga_devices().front());
  EXPECT_EQ(flat.evaluate(m), kInfeasible);
  EXPECT_EQ(reference.evaluate(m), kInfeasible);
}

TEST(FlatEvalEquivalence, ForeignOrderFallback) {
  // evaluate_order on an order the evaluator did not prepare (a transient
  // walk plan) must match the reference as well.
  Rng rng(105);
  const Dag dag = generate_sp_dag(50, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator flat(cost);  // breadth-first order only
  ReferenceEvaluator reference(cost);
  const Mapping m = random_feasible_mapping(cost, rng);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<NodeId> order = random_topological_order(dag, rng);
    EXPECT_DOUBLE_EQ(flat.evaluate_order(m, order),
                     reference.evaluate_order(m, order));
  }
}

TEST(EvaluateBatch, BitIdenticalAcrossThreadCounts) {
  Rng rng(106);
  const Dag dag = generate_sp_dag(80, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 3});

  std::vector<Mapping> batch;
  for (int i = 0; i < 37; ++i) {
    batch.push_back(random_feasible_mapping(cost, rng));
  }
  const std::vector<double> serial = eval.evaluate_batch(batch);
  ASSERT_EQ(serial.size(), batch.size());
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    const std::vector<double> parallel = eval.evaluate_batch(batch, &pool);
    // Bitwise equality, not approximate: the partition is static and each
    // item's arithmetic is identical on every worker.
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(EvaluateBatch, MatchesSingleEvaluations) {
  Rng rng(107);
  const Dag dag = generate_sp_dag(40, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  std::vector<Mapping> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(random_feasible_mapping(cost, rng));
  }
  ThreadPool pool(4);
  const std::vector<double> results = eval.evaluate_batch(batch, &pool);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i], eval.evaluate(batch[i]));
  }
}

TEST(EvaluateBatch, CountsEvaluations) {
  Rng rng(108);
  const Dag dag = generate_sp_dag(20, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 2});  // 3 orders total
  std::vector<Mapping> batch(5, eval.default_mapping());
  ThreadPool pool(3);
  eval.evaluate_batch(batch, &pool);
  EXPECT_EQ(eval.evaluation_count(), 15u);  // 5 mappings x 3 orders
}

TEST(EvalContext, ConcurrentContextsIndependent) {
  // The documented thread-safety contract: const evaluation with distinct
  // contexts. Hammer one evaluator from several threads and check every
  // result against the serial answer.
  Rng rng(109);
  const Dag dag = generate_sp_dag(60, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 2});
  std::vector<Mapping> mappings;
  std::vector<double> expected;
  for (int i = 0; i < 24; ++i) {
    mappings.push_back(random_feasible_mapping(cost, rng));
    expected.push_back(eval.evaluate(mappings.back()));
  }
  ThreadPool pool(4);
  std::vector<double> got(mappings.size());
  pool.parallel_for(mappings.size(), [&](std::size_t begin, std::size_t end,
                                         std::size_t /*worker*/) {
    EvalContext ctx;  // per-block private context
    for (std::size_t i = begin; i < end; ++i) {
      got[i] = eval.evaluate(mappings[i], ctx);
    }
  });
  EXPECT_EQ(got, expected);
}

TEST(FlatGraph, MirrorsDagAdjacency) {
  Rng rng(110);
  Dag base = generate_sp_dag(45, rng);
  const Dag dag = add_random_edges(base, 20, rng);
  const FlatGraph flat(dag);
  ASSERT_EQ(flat.node_count(), dag.node_count());
  ASSERT_EQ(flat.edge_count(), dag.edge_count());
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    const NodeId v(i);
    const auto& in = dag.in_edges(v);
    ASSERT_EQ(flat.in_end(v) - flat.in_begin(v), in.size());
    for (std::size_t k = 0; k < in.size(); ++k) {
      const std::uint32_t slot = flat.in_begin(v) + k;
      EXPECT_EQ(flat.in_edge(slot), in[k]);
      EXPECT_EQ(flat.in_src(slot), dag.src(in[k]).v);
      EXPECT_EQ(flat.in_data_mb(slot), dag.data_mb(in[k]));
    }
    const auto& out = dag.out_edges(v);
    ASSERT_EQ(flat.out_end(v) - flat.out_begin(v), out.size());
    for (std::size_t k = 0; k < out.size(); ++k) {
      const std::uint32_t slot = flat.out_begin(v) + k;
      EXPECT_EQ(flat.out_edge(slot), out[k]);
      EXPECT_EQ(flat.out_dst(slot), dag.dst(out[k]).v);
      EXPECT_EQ(flat.out_data_mb(slot), dag.data_mb(out[k]));
    }
  }
}

}  // namespace
}  // namespace spmap
