#include "mappers/decomposition.hpp"

#include <algorithm>
#include <memory>

#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "util/error.hpp"
#include "util/indexed_heap.hpp"
#include "util/thread_pool.hpp"

namespace spmap {

namespace {

constexpr double kTiny = 1e-15;

/// Candidate mappings materialized per evaluate_batch call. Bounds the
/// memory of a full-frontier sweep to kBatchChunk * node_count devices.
constexpr std::size_t kBatchChunk = 512;

/// One mapping operation: move all nodes of a subgraph onto one device.
struct OpTable {
  const SubgraphSet* set;
  std::size_t device_count;

  std::size_t count() const { return set->size() * device_count; }
  const std::vector<NodeId>& nodes(std::size_t op) const {
    return set->subgraphs[op / device_count];
  }
  DeviceId device(std::size_t op) const {
    return DeviceId(op % device_count);
  }

  /// True if the operation would not change `mapping` at all.
  bool is_noop(std::size_t op, const Mapping& mapping) const {
    const DeviceId d = device(op);
    for (const NodeId n : nodes(op)) {
      if (mapping[n] != d) return false;
    }
    return true;
  }

  void apply(std::size_t op, Mapping& mapping) const {
    const DeviceId d = device(op);
    for (const NodeId n : nodes(op)) mapping[n] = d;
  }

  /// Applies `op` to `mapping`, saving the previous devices into `undo`.
  void apply_with_undo(std::size_t op, Mapping& mapping,
                       std::vector<DeviceId>& undo) const {
    const auto& ns = nodes(op);
    undo.resize(ns.size());
    const DeviceId d = device(op);
    for (std::size_t k = 0; k < ns.size(); ++k) {
      undo[k] = mapping[ns[k]];
      mapping[ns[k]] = d;
    }
  }

  void revert(std::size_t op, Mapping& mapping,
              const std::vector<DeviceId>& undo) const {
    const auto& ns = nodes(op);
    for (std::size_t k = 0; k < ns.size(); ++k) mapping[ns[k]] = undo[k];
  }
};

/// Runs `consume(op, makespan)` for every non-noop operation in ascending
/// op order, with the makespans computed through Evaluator::evaluate_batch
/// in chunks (parallel across `pool`'s workers). The ascending consume
/// order makes the caller's running-best selection identical to the serial
/// apply/evaluate/revert loop; the batch itself is bit-identical for every
/// thread count. Deadline/cancellation interrupts (`control.interrupted()`)
/// truncate the scan at the next op; the caller then acts on whatever
/// prefix was priced.
template <typename Consume>
void sweep_frontier(const OpTable& ops, const Mapping& mapping,
                    const Evaluator& eval, ThreadPool* pool,
                    const RunControl& control, Consume&& consume) {
  std::vector<std::size_t> op_of;
  std::vector<Mapping> candidates;
  op_of.reserve(kBatchChunk);
  candidates.reserve(kBatchChunk);
  auto flush = [&]() {
    const std::vector<double> makespans =
        eval.evaluate_batch(candidates, pool);
    for (std::size_t i = 0; i < makespans.size(); ++i) {
      consume(op_of[i], makespans[i]);
    }
    op_of.clear();
    candidates.clear();
  };
  for (std::size_t op = 0; op < ops.count(); ++op) {
    if (control.interrupted()) break;
    if (ops.is_noop(op, mapping)) continue;
    candidates.push_back(mapping);
    ops.apply(op, candidates.back());
    op_of.push_back(op);
    if (candidates.size() == kBatchChunk) flush();
  }
  if (!candidates.empty()) flush();
}

}  // namespace

DecompositionMapper::DecompositionMapper(std::string name,
                                         SubgraphSet subgraphs,
                                         DecompositionParams params)
    : name_(std::move(name)),
      subgraphs_(std::move(subgraphs)),
      params_(params) {
  require(!subgraphs_.subgraphs.empty(),
          "DecompositionMapper: empty subgraph set");
}

MapReport DecompositionMapper::map(const Evaluator& eval,
                                   const MapRequest& request) {
  RunControl control(request);
  MapReport report = params_.variant == DecompositionVariant::Basic
                         ? map_basic(eval, control)
                         : map_threshold(eval, control);
  control.record_incumbent(report.predicted_makespan, report.iterations);
  control.finalize(report);
  return report;
}

MapReport DecompositionMapper::map_basic(const Evaluator& eval,
                                         RunControl& control) const {
  const std::size_t evals_before = eval.evaluation_count();
  const OpTable ops{&subgraphs_, eval.cost().platform().device_count()};
  const auto objective = [&](const Mapping& m) {
    return params_.objective ? params_.objective(eval, m) : eval.evaluate(m);
  };
  // A custom objective cannot go through the makespan batch API.
  const PoolLease lease(control.request(),
                        params_.objective ? 1 : params_.threads);
  ThreadPool* pool = params_.objective ? nullptr : lease.get();

  Mapping mapping = eval.default_mapping();
  double current = objective(mapping);
  const std::size_t cap = params_.max_iterations
                              ? params_.max_iterations
                              : std::max<std::size_t>(16, 2 * mapping.size());

  // Budgets are checked between improvement iterations (a sweep prices up
  // to ops.count() candidates at once); deadline/cancellation truncate the
  // candidate scans themselves.
  std::size_t iterations = 0;
  bool converged = false;
  std::vector<DeviceId> undo;
  while (iterations < cap) {
    if (control.should_stop(iterations,
                            eval.evaluation_count() - evals_before)) {
      break;
    }
    std::size_t best_op = ops.count();
    double best_makespan = current;
    auto keep_best = [&](std::size_t op, double ms) {
      if (ms < best_makespan - kTiny) {
        best_makespan = ms;
        best_op = op;
      }
    };
    if (pool) {
      sweep_frontier(ops, mapping, eval, pool, control, keep_best);
    } else {
      for (std::size_t op = 0; op < ops.count(); ++op) {
        if (control.interrupted()) break;
        if (ops.is_noop(op, mapping)) continue;
        ops.apply_with_undo(op, mapping, undo);
        const double ms = objective(mapping);
        ops.revert(op, mapping, undo);
        keep_best(op, ms);
      }
    }
    if (best_op == ops.count()) {
      // Nothing improving — convergence only if the scan was complete.
      converged = !control.interrupted();
      break;
    }
    ops.apply(best_op, mapping);
    current = best_makespan;
    ++iterations;
  }
  if (!converged) {
    control.should_stop(iterations, eval.evaluation_count() - evals_before);
  }

  MapReport report;
  report.predicted_makespan = eval.evaluate(mapping);
  report.mapping = std::move(mapping);
  report.iterations = iterations;
  report.evaluations = eval.evaluation_count() - evals_before;
  return report;
}

MapReport DecompositionMapper::map_threshold(const Evaluator& eval,
                                             RunControl& control) const {
  const std::size_t evals_before = eval.evaluation_count();
  const OpTable ops{&subgraphs_, eval.cost().platform().device_count()};
  const double gamma = std::max(params_.gamma, 1.0);
  const auto objective = [&](const Mapping& m) {
    return params_.objective ? params_.objective(eval, m) : eval.evaluate(m);
  };
  // A custom objective cannot go through the makespan batch API. The
  // heap-guided inner scan is inherently sequential; only the full-frontier
  // sweeps (initial fill, verification) batch.
  const PoolLease lease(control.request(),
                        params_.objective ? 1 : params_.threads);
  ThreadPool* pool = params_.objective ? nullptr : lease.get();

  Mapping mapping = eval.default_mapping();
  double current = objective(mapping);
  std::vector<DeviceId> undo;

  // Expected improvement of one operation against the current mapping.
  auto recompute = [&](std::size_t op) {
    if (ops.is_noop(op, mapping)) return -kInfeasible;  // never useful
    ops.apply_with_undo(op, mapping, undo);
    const double ms = objective(mapping);
    ops.revert(op, mapping, undo);
    return current - ms;  // > 0 == improvement
  };

  // Improvement of every operation against the current mapping at once
  // (noops fixed at -inf, like recompute). Calls consume(op, improvement)
  // in ascending op order.
  auto recompute_all = [&](auto&& consume) {
    if (pool) {
      std::vector<double> improvement(ops.count(), -kInfeasible);
      sweep_frontier(ops, mapping, eval, pool, control,
                     [&](std::size_t op, double ms) {
                       improvement[op] = current - ms;
                     });
      for (std::size_t op = 0; op < ops.count(); ++op) {
        consume(op, improvement[op]);
      }
    } else {
      for (std::size_t op = 0; op < ops.count(); ++op) {
        if (control.interrupted()) break;
        consume(op, recompute(op));
      }
    }
  };

  // First iteration: evaluate every operation once and fill the priority
  // queue with the expected improvements (Section III-D).
  IndexedMaxHeap heap(ops.count());
  recompute_all(
      [&](std::size_t op, double imp) { heap.push_or_update(op, imp); });

  const std::size_t cap = params_.max_iterations
                              ? params_.max_iterations
                              : std::max<std::size_t>(16, 2 * mapping.size());
  std::size_t iterations = 0;
  bool converged = false;
  std::vector<bool> fresh(ops.count(), false);

  while (iterations < cap) {
    if (control.should_stop(iterations,
                            eval.evaluation_count() - evals_before)) {
      break;
    }
    // Scan operations in order of expected improvement, re-evaluating each
    // against the current configuration. Once an actual improvement is
    // found, keep looking only while the next expectation exceeds
    // best_imp / gamma.
    std::fill(fresh.begin(), fresh.end(), false);
    std::size_t best_op = ops.count();
    double best_imp = 0.0;
    while (!heap.empty()) {
      if (control.interrupted()) break;
      const std::size_t top = heap.top();
      if (fresh[top]) break;  // exact value on top: nothing stale can win
      if (best_op != ops.count() && heap.top_priority() <= best_imp / gamma) {
        break;  // look-ahead cutoff
      }
      if (heap.top_priority() <= kTiny && best_op != ops.count()) break;
      const double imp = recompute(top);
      heap.push_or_update(top, imp);
      fresh[top] = true;
      if (imp > best_imp + kTiny) {
        best_imp = imp;
        best_op = top;
      }
      if (best_op == ops.count() && heap.top_priority() <= kTiny) {
        break;  // best expectation is non-positive: no candidate this round
      }
    }

    if (best_op == ops.count() && !control.interrupted()) {
      // Verification sweep (paper: "in the last iteration, we recompute
      // every possible mapping"): expectations may be stale underestimates.
      recompute_all([&](std::size_t op, double imp) {
        heap.push_or_update(op, imp);
        if (imp > best_imp + kTiny) {
          best_imp = imp;
          best_op = op;
        }
      });
      if (best_op == ops.count()) {
        // Verified — convergence only if the sweep ran to completion.
        converged = !control.interrupted();
        break;
      }
    }
    if (best_op == ops.count()) break;  // interrupted with nothing to apply

    ops.apply(best_op, mapping);
    current -= best_imp;
    // The applied operation is exhausted for now; its expectation resets.
    heap.push_or_update(best_op, 0.0);
    ++iterations;
  }
  if (!converged) {
    control.should_stop(iterations, eval.evaluation_count() - evals_before);
  }

  MapReport report;
  report.predicted_makespan = eval.evaluate(mapping);
  report.mapping = std::move(mapping);
  report.iterations = iterations;
  report.evaluations = eval.evaluation_count() - evals_before;
  return report;
}

std::unique_ptr<DecompositionMapper> make_single_node_mapper(const Dag& dag,
                                                             bool first_fit) {
  DecompositionParams params;
  params.variant = first_fit ? DecompositionVariant::Threshold
                             : DecompositionVariant::Basic;
  params.gamma = 1.0;
  return std::make_unique<DecompositionMapper>(
      first_fit ? "SNFirstFit" : "SingleNode",
      single_node_subgraphs(dag.node_count()), params);
}

std::unique_ptr<DecompositionMapper> make_series_parallel_mapper(
    const Dag& dag, Rng& rng, bool first_fit, CutPolicy policy) {
  DecompositionParams params;
  params.variant = first_fit ? DecompositionVariant::Threshold
                             : DecompositionVariant::Basic;
  params.gamma = 1.0;
  return std::make_unique<DecompositionMapper>(
      first_fit ? "SPFirstFit" : "SeriesParallel",
      series_parallel_subgraphs(dag, rng, policy), params);
}

namespace {

CutPolicy cut_policy_option(const MapperOptions& options) {
  const std::string value = options.get("cut", "random");
  if (value == "random") return CutPolicy::Random;
  if (value == "smallest") return CutPolicy::SmallestSubtree;
  if (value == "largest") return CutPolicy::LargestSubtree;
  if (value == "first") return CutPolicy::FirstActive;
  throw Error("mapper option 'cut': expected random|smallest|largest|first, "
              "got '" +
              value + "'");
}

std::size_t max_iterations_option(const MapperOptions& options) {
  const std::int64_t value = options.get_int("max-iterations", 0);
  require(value >= 0, "mapper option 'max-iterations': must be >= 0");
  return static_cast<std::size_t>(value);
}

double gamma_option(const MapperOptions& options) {
  const double gamma = options.get_double("gamma", 1.0);
  require(gamma >= 1.0, "mapper option 'gamma': must be >= 1 (1 = FirstFit)");
  return gamma;
}

const MapperOptionInfo kMaxIterationsOption{
    "max-iterations", "0",
    "iteration cap; 0 derives ~one iteration per task"};
const MapperOptionInfo kGammaOption{
    "gamma", "1", "threshold look-ahead divisor; 1 = FirstFit"};
const MapperOptionInfo kCutOption{
    "cut", "random",
    "Algorithm 1 branch-cut policy: random|smallest|largest|first"};
const MapperOptionInfo kThreadsOption{
    "threads", "1",
    "candidate-sweep worker threads (results thread-count invariant)"};

}  // namespace

void detail::register_decomposition_mappers(MapperRegistry& registry) {
  {
    MapperEntry entry;
    entry.name = "sn";
    entry.display_name = "SingleNode";
    entry.description =
        "Single-node decomposition mapping (Section III-B): exhaustive "
        "greedy re-mapping of individual tasks, best improvement first";
    entry.options = {kMaxIterationsOption, kThreadsOption};
    entry.factory = [](const MapperContext& ctx) {
      DecompositionParams params;
      params.variant = DecompositionVariant::Basic;
      params.max_iterations = max_iterations_option(ctx.options);
      params.threads = threads_option(ctx.options);
      return std::make_unique<DecompositionMapper>(
          "SingleNode", single_node_subgraphs(ctx.dag.node_count()), params);
    };
    registry.add(std::move(entry));
  }
  {
    MapperEntry entry;
    entry.name = "snff";
    entry.display_name = "SNFirstFit";
    entry.description =
        "Single-node decomposition with the gamma-threshold heap "
        "(Section III-D); gamma=1 is the paper's SNFirstFit";
    entry.options = {kGammaOption, kMaxIterationsOption, kThreadsOption};
    entry.factory = [](const MapperContext& ctx) {
      DecompositionParams params;
      params.variant = DecompositionVariant::Threshold;
      params.gamma = gamma_option(ctx.options);
      params.max_iterations = max_iterations_option(ctx.options);
      params.threads = threads_option(ctx.options);
      return std::make_unique<DecompositionMapper>(
          "SNFirstFit", single_node_subgraphs(ctx.dag.node_count()), params);
    };
    registry.add(std::move(entry));
  }
  {
    MapperEntry entry;
    entry.name = "sp";
    entry.display_name = "SeriesParallel";
    entry.description =
        "Series-parallel decomposition mapping (Section III-C): greedy "
        "re-mapping of whole SP subgraphs from the Algorithm 1 forest";
    entry.needs_sp_decomposition = true;
    entry.options = {kCutOption, kMaxIterationsOption, kThreadsOption};
    entry.factory = [](const MapperContext& ctx) {
      DecompositionParams params;
      params.variant = DecompositionVariant::Basic;
      params.max_iterations = max_iterations_option(ctx.options);
      params.threads = threads_option(ctx.options);
      return std::make_unique<DecompositionMapper>(
          "SeriesParallel",
          series_parallel_subgraphs(ctx.dag, ctx.rng,
                                    cut_policy_option(ctx.options)),
          params);
    };
    registry.add(std::move(entry));
  }
  {
    MapperEntry entry;
    entry.name = "spff";
    entry.display_name = "SPFirstFit";
    entry.description =
        "Series-parallel decomposition with the gamma-threshold heap; "
        "gamma=1 is the paper's SPFirstFit flagship heuristic";
    entry.needs_sp_decomposition = true;
    entry.options = {kCutOption, kGammaOption, kMaxIterationsOption,
                     kThreadsOption};
    entry.factory = [](const MapperContext& ctx) {
      DecompositionParams params;
      params.variant = DecompositionVariant::Threshold;
      params.gamma = gamma_option(ctx.options);
      params.max_iterations = max_iterations_option(ctx.options);
      params.threads = threads_option(ctx.options);
      return std::make_unique<DecompositionMapper>(
          "SPFirstFit",
          series_parallel_subgraphs(ctx.dag, ctx.rng,
                                    cut_policy_option(ctx.options)),
          params);
    };
    registry.add(std::move(entry));
  }
}

}  // namespace spmap
