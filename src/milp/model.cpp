#include "milp/model.hpp"

#include <cmath>

namespace spmap {

int MilpModel::add_var(VarKind kind, double lb, double ub, double obj_coeff,
                       std::string name) {
  if (kind == VarKind::Binary) {
    lb = 0.0;
    ub = 1.0;
  }
  require(lb <= ub, "MilpModel: lb > ub");
  kinds_.push_back(kind);
  lb_.push_back(lb);
  ub_.push_back(ub);
  obj_.push_back(obj_coeff);
  names_.push_back(std::move(name));
  return static_cast<int>(kinds_.size() - 1);
}

void MilpModel::add_constraint(std::vector<LinTerm> terms, RowSense sense,
                               double rhs) {
  for (const LinTerm& t : terms) check_var(t.var);
  rows_.push_back(Row{std::move(terms), sense, rhs});
}

double MilpModel::objective_value(const std::vector<double>& x) const {
  require(x.size() == var_count(), "objective_value: size mismatch");
  double sum = 0.0;
  for (std::size_t v = 0; v < x.size(); ++v) sum += obj_[v] * x[v];
  return sum;
}

bool MilpModel::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != var_count()) return false;
  for (std::size_t v = 0; v < x.size(); ++v) {
    if (x[v] < lb_[v] - tol || x[v] > ub_[v] + tol) return false;
    if (kinds_[v] != VarKind::Continuous &&
        std::abs(x[v] - std::nearbyint(x[v])) > tol) {
      return false;
    }
  }
  for (const Row& row : rows_) {
    double lhs = 0.0;
    for (const LinTerm& t : row.terms) lhs += t.coeff * x[t.var];
    switch (row.sense) {
      case RowSense::Le:
        if (lhs > row.rhs + tol) return false;
        break;
      case RowSense::Ge:
        if (lhs < row.rhs - tol) return false;
        break;
      case RowSense::Eq:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace spmap
