/// Tests of the fault-injection registry (util/failpoint.hpp): spec
/// grammar, hit windows (@SKIP+COUNT), the three actions, env arming,
/// and the crash action observed from a forked child.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace spmap {
namespace {

/// Every test leaves the registry clean (it is process-global).
class UtilFailpoint : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::instance().clear(); }
  void TearDown() override { Failpoints::instance().clear(); }
};

TEST_F(UtilFailpoint, UnarmedHitsAreFreeAndFalse) {
  EXPECT_FALSE(Failpoints::instance().armed());
  EXPECT_FALSE(failpoint("journal.append"));
  EXPECT_EQ(Failpoints::instance().hits("journal.append"), 0u);
}

TEST_F(UtilFailpoint, ParseAcceptsTheDocumentedGrammar) {
  const auto specs = Failpoints::parse(
      "journal.append=error,daemon.terminal=crash@3,"
      "daemon.flush=delay:25@1+2");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].first, "journal.append");
  EXPECT_EQ(specs[0].second.action, FailpointSpec::Action::kError);
  EXPECT_EQ(specs[0].second.skip, 0u);
  EXPECT_EQ(specs[1].first, "daemon.terminal");
  EXPECT_EQ(specs[1].second.action, FailpointSpec::Action::kCrash);
  EXPECT_EQ(specs[1].second.skip, 3u);
  EXPECT_EQ(specs[2].first, "daemon.flush");
  EXPECT_EQ(specs[2].second.action, FailpointSpec::Action::kDelay);
  EXPECT_DOUBLE_EQ(specs[2].second.delay_ms, 25.0);
  EXPECT_EQ(specs[2].second.skip, 1u);
  EXPECT_EQ(specs[2].second.count, 2u);
}

TEST_F(UtilFailpoint, ParseRejectsBadGrammar) {
  EXPECT_THROW(Failpoints::parse("noequals"), Error);
  EXPECT_THROW(Failpoints::parse("x=explode"), Error);
  EXPECT_THROW(Failpoints::parse("x=delay:abc"), Error);
  EXPECT_THROW(Failpoints::parse("x=error@"), Error);
  EXPECT_THROW(Failpoints::parse("=error"), Error);
}

TEST_F(UtilFailpoint, ErrorActionFiresInItsWindowOnly) {
  // Skip 2 hits, fire 1, then disarm: only the third hit fails.
  Failpoints::instance().arm("p=error@2+1");
  EXPECT_TRUE(Failpoints::instance().armed());
  EXPECT_FALSE(failpoint("p"));
  EXPECT_FALSE(failpoint("p"));
  EXPECT_TRUE(failpoint("p"));
  EXPECT_FALSE(failpoint("p"));
  EXPECT_EQ(Failpoints::instance().hits("p"), 4u);
  // Other names are unaffected.
  EXPECT_FALSE(failpoint("q"));
}

TEST_F(UtilFailpoint, DelayActionSleepsAndReturnsFalse) {
  Failpoints::instance().arm("slow=delay:30");
  const WallTimer timer;
  EXPECT_FALSE(failpoint("slow"));
  EXPECT_GE(timer.millis(), 25.0);
}

TEST_F(UtilFailpoint, LaterEntriesReplaceEarlierOnesAndClearDisarms) {
  Failpoints::instance().arm("p=error");
  Failpoints::instance().arm("p=error@100");  // replaced: now skips 100
  EXPECT_FALSE(failpoint("p"));
  Failpoints::instance().clear();
  EXPECT_FALSE(Failpoints::instance().armed());
}

TEST_F(UtilFailpoint, ArmFromEnvReadsTheVariable) {
  ::setenv("SPMAP_FAILPOINTS", "env.point=error", 1);
  Failpoints::instance().arm_from_env();
  ::unsetenv("SPMAP_FAILPOINTS");
  EXPECT_TRUE(failpoint("env.point"));
}

TEST_F(UtilFailpoint, CrashActionExitsWithTheFailpointCode) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm and hit a crash point — must never return.
    Failpoints::instance().arm("boom=crash");
    failpoint("boom");
    ::_exit(0);  // reached only if the crash action is broken
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kFailpointCrashExit);
}

}  // namespace
}  // namespace spmap
