#include "model/platform.hpp"

namespace spmap {

DeviceId Platform::add_device(Device device) {
  require(device.lanes >= 1.0 || device.is_fpga(),
          "Platform: device needs >= 1 lane");
  const DeviceId id(devices_.size());
  devices_.push_back(std::move(device));
  // Grow the link matrices, preserving existing entries.
  const std::size_t n = devices_.size();
  std::vector<double> bw(n * n, -1.0);
  std::vector<double> lat(n * n, -1.0);
  for (std::size_t a = 0; a + 1 < n; ++a) {
    for (std::size_t b = 0; b + 1 < n; ++b) {
      bw[a * n + b] = bandwidth_[a * (n - 1) + b];
      lat[a * n + b] = latency_[a * (n - 1) + b];
    }
  }
  bandwidth_ = std::move(bw);
  latency_ = std::move(lat);
  return id;
}

DeviceId Platform::default_device() const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].kind == DeviceKind::Cpu) return DeviceId(i);
  }
  require(!devices_.empty(), "Platform: no devices");
  return DeviceId(0u);
}

std::size_t Platform::link_index(DeviceId from, DeviceId to) const {
  require(from.v < devices_.size() && to.v < devices_.size(),
          "Platform: device id out of range");
  return from.v * devices_.size() + to.v;
}

void Platform::set_link(DeviceId a, DeviceId b, double bandwidth_gbps,
                        double latency_s) {
  require(a != b, "Platform: no self-links");
  require(bandwidth_gbps > 0.0 && latency_s >= 0.0,
          "Platform: invalid link parameters");
  bandwidth_[link_index(a, b)] = bandwidth_gbps;
  bandwidth_[link_index(b, a)] = bandwidth_gbps;
  latency_[link_index(a, b)] = latency_s;
  latency_[link_index(b, a)] = latency_s;
}

double Platform::bandwidth_gbps(DeviceId from, DeviceId to) const {
  const double bw = bandwidth_[link_index(from, to)];
  require(bw > 0.0, "Platform: link not configured");
  return bw;
}

double Platform::latency_s(DeviceId from, DeviceId to) const {
  const double lat = latency_[link_index(from, to)];
  require(lat >= 0.0, "Platform: link not configured");
  return lat;
}

std::vector<DeviceId> Platform::fpga_devices() const {
  std::vector<DeviceId> out;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].is_fpga()) out.push_back(DeviceId(i));
  }
  return out;
}

void Platform::validate() const {
  require(!devices_.empty(), "Platform: no devices");
  for (const Device& d : devices_) {
    if (d.is_fpga()) {
      require(d.area_budget > 0.0, "Platform: FPGA without area budget");
      require(d.stream_gops_per_streamability > 0.0,
              "Platform: FPGA without throughput");
      require(d.stream_fill_fraction >= 0.0 && d.stream_fill_fraction <= 1.0,
              "Platform: FPGA fill fraction outside [0, 1]");
    } else {
      require(d.lanes >= 1.0 && d.lane_gops > 0.0,
              "Platform: device without compute throughput");
    }
  }
  for (std::size_t a = 0; a < devices_.size(); ++a) {
    for (std::size_t b = 0; b < devices_.size(); ++b) {
      if (a == b) continue;
      require(bandwidth_[a * devices_.size() + b] > 0.0,
              "Platform: missing link");
    }
  }
}

Platform reference_platform() {
  Platform p;

  // AMD Epyc 7351P: 16 cores @ 2.4 GHz base, modeled as four quad-core
  // execution contexts so independent tasks overlap on the host.
  Device cpu;
  cpu.name = "AMD Epyc 7351P";
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 16.0;
  cpu.lane_gops = 2.4;
  cpu.slots = 4;
  cpu.idle_watts = 45.0;
  cpu.active_watts = 155.0;  // TDP
  cpu.transfer_watts = 10.0;
  const DeviceId cpu_id = p.add_device(cpu);

  // AMD Radeon RX Vega 56: 3584 stream processors. Effective per-lane
  // throughput is derated to reflect memory-bound, irregular task kernels;
  // a perfectly parallelizable task runs ~7.5x faster than on one CPU
  // context. Tasks with imperfect parallelizability collapse under
  // Amdahl's law and are better off on the CPU.
  Device gpu;
  gpu.name = "AMD Radeon RX Vega 56";
  gpu.kind = DeviceKind::Gpu;
  gpu.lanes = 3584.0;
  gpu.lane_gops = 0.02;
  gpu.idle_watts = 25.0;
  gpu.active_watts = 210.0;
  gpu.transfer_watts = 15.0;
  const DeviceId gpu_id = p.add_device(gpu);

  // Xilinx Zynq XCZ7045: dataflow accelerator. Throughput scales with the
  // task's streamability (median ~7.4 under the paper's lognormal), and the
  // area budget bounds how many tasks fit at once.
  Device fpga;
  fpga.name = "Xilinx XCZ7045";
  fpga.kind = DeviceKind::Fpga;
  fpga.lanes = 1.0;
  fpga.area_budget = 120.0;
  fpga.stream_gops_per_streamability = 0.7;
  fpga.stream_fill_fraction = 0.1;
  fpga.idle_watts = 5.0;
  fpga.active_watts = 20.0;
  fpga.transfer_watts = 8.0;
  const DeviceId fpga_id = p.add_device(fpga);

  // PCIe-class interconnects: *effective* application-level bandwidths
  // (GB/s) including staging, protocol and synchronization overheads on
  // data-intensive streams — substantially below raw link rates.
  p.set_link(cpu_id, gpu_id, 3.0, 1e-4);
  p.set_link(cpu_id, fpga_id, 1.5, 1e-4);
  p.set_link(gpu_id, fpga_id, 0.75, 2e-4);  // routed via host
  p.validate();
  return p;
}

Platform manycore_platform() {
  Platform p;

  // Dual-socket AMD Epyc 9654 class host: 2 x 96 cores, partitioned into 32
  // six-core execution contexts so wide workflow stages overlap massively.
  Device cpu;
  cpu.name = "2x AMD Epyc 9654";
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 192.0;
  cpu.lane_gops = 2.4;
  cpu.slots = 32;
  cpu.idle_watts = 180.0;
  cpu.active_watts = 720.0;
  cpu.transfer_watts = 20.0;
  const DeviceId cpu_id = p.add_device(cpu);

  // Data-center GPU partitioned into 8 concurrent compute instances
  // (MIG-style), each with the reference card's per-lane throughput.
  Device gpu;
  gpu.name = "MI210-class GPU (8 partitions)";
  gpu.kind = DeviceKind::Gpu;
  gpu.lanes = 8192.0;
  gpu.lane_gops = 0.02;
  gpu.slots = 8;
  gpu.idle_watts = 60.0;
  gpu.active_watts = 500.0;
  gpu.transfer_watts = 25.0;
  const DeviceId gpu_id = p.add_device(gpu);

  // Large Alveo-class accelerator card: same dataflow model as the
  // reference FPGA, roughly four times the fabric.
  Device fpga;
  fpga.name = "Alveo U280-class FPGA";
  fpga.kind = DeviceKind::Fpga;
  fpga.lanes = 1.0;
  fpga.area_budget = 480.0;
  fpga.stream_gops_per_streamability = 1.4;
  fpga.stream_fill_fraction = 0.1;
  fpga.idle_watts = 25.0;
  fpga.active_watts = 100.0;
  fpga.transfer_watts = 15.0;
  const DeviceId fpga_id = p.add_device(fpga);

  // PCIe gen4/gen5-class effective application bandwidths.
  p.set_link(cpu_id, gpu_id, 12.0, 5e-5);
  p.set_link(cpu_id, fpga_id, 6.0, 5e-5);
  p.set_link(gpu_id, fpga_id, 3.0, 1e-4);  // routed via host
  p.validate();
  return p;
}

}  // namespace spmap
